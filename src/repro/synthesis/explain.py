"""Pipeline explanation: render every Fig. 3 artifact for one query.

NL programming lives or dies on trust — when a codelet looks wrong, the
user needs to see *why* the system read the query that way.  This module
renders the full intermediate state: the dependency graph (Step 1), the
pruned graph (Step 2), the WordToAPI map (Step 3), the EdgeToPath sizes and
a sample of candidate paths (Step 4), orphan detection and the relocation
variants (Sec. V-B), and the synthesized codelet with its statistics.

The walk-through is the *real* staged pipeline, not a re-enactment: the
query runs once through :func:`repro.synthesis.stages.run_front_end` with
``keep_artifacts=True``, so the rendered Step 1/Step 2 graphs are the
exact objects the engine consumed, and the closing per-stage timing
section comes from the same :class:`~repro.synthesis.stages.Trace` that
``repro batch --json --trace`` and the server emit.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.orphan import relocation_variants
from repro.errors import ReproError
from repro.synthesis.deadline import Deadline
from repro.synthesis.domain import Domain
from repro.synthesis.pipeline import make_engine
from repro.synthesis.problem import SynthesisProblem
from repro.synthesis.stages import SynthesisContext, Trace, run_front_end


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def _trace_lines(trace: Trace) -> List[str]:
    """Render the per-stage spans the walk-through actually recorded."""
    lines = ["Per-stage timing (docs/architecture.md):"]
    for span in trace.spans:
        mark = "" if span.status == "ok" else f"  [{span.status}]"
        lines.append(
            f"  {span.stage}: {span.elapsed_seconds * 1000:.2f} ms{mark}"
        )
    return lines


def explain_problem(problem: SynthesisProblem, max_paths_shown: int = 3) -> str:
    """Steps 3-4 + orphan analysis of an already-built problem."""
    lines: List[str] = []
    graph = problem.domain.graph

    lines.append("Step 3 — WordToAPI map:")
    for node in problem.dep_graph.nodes():
        cands = problem.candidates.get(node.node_id, [])
        shown = ", ".join(
            (c.api_name or c.node_id.split(":", 1)[1]) for c in cands
        )
        lines.append(f"  {node.word!r} -> [{shown}]")

    lines.append("Step 4 — EdgeToPath map:")
    lines.append(
        f"  (virtual root edge): {len(problem.root_paths)} candidate paths"
    )
    for edge in problem.dep_graph.edges():
        gov = problem.dep_graph.node(edge.gov).word
        dep = problem.dep_graph.node(edge.dep).word
        paths = problem.paths_of(edge)
        lines.append(f"  {gov!r} -> {dep!r}: {len(paths)} candidate paths")
        for cp in paths[:max_paths_shown]:
            lines.append(f"      {cp.path.describe(graph)}")
        if len(paths) > max_paths_shown:
            lines.append(f"      ... {len(paths) - max_paths_shown} more")

    orphans = problem.orphan_nodes()
    if orphans:
        names = [problem.dep_graph.node(o).word for o in orphans]
        variants, _ = relocation_variants(problem)
        lines.append(
            f"Orphans (Sec. V-B): {names} -> "
            f"{len(variants)} relocation variant(s)"
        )
        for variant in variants[:2]:
            for orphan in orphans:
                edge = variant.dep_graph.parent_edge(orphan)
                if edge is not None and edge.rel == "reloc":
                    gov = variant.dep_graph.node(edge.gov).word
                    dep = variant.dep_graph.node(orphan).word
                    lines.append(f"  relocate {dep!r} under {gov!r}")
    else:
        lines.append("Orphans (Sec. V-B): none")
    return "\n".join(lines)


def explain_query(
    domain: Domain,
    query: str,
    engine: str = "dggt",
    timeout_seconds: Optional[float] = 20.0,
    examples=None,
) -> str:
    """The full six-step walk-through for one query, as rendered text.

    ``examples`` (input→output pairs) appends the execution-guided
    verification step: the top-ranked candidates run against every
    example and the walk-through shows each verdict
    (docs/verification.md).
    """
    lines: List[str] = [f"query: {query}", ""]

    deadline = (
        Deadline(timeout_seconds)
        if timeout_seconds is not None
        else Deadline.unlimited()
    )
    ctx = SynthesisContext(
        query=query,
        domain=domain,
        deadline=deadline,
        trace=Trace(),
        keep_artifacts=True,
    )
    # Front-end failures (unparseable query, no API candidates, expired
    # deadline) propagate to the caller exactly as before the refactor.
    problem = run_front_end(ctx)

    lines.append("Step 1 — dependency parsing:")
    lines.append(_indent(ctx.artifacts["parse"].describe()))

    lines.append("Step 2 — query graph pruning:")
    lines.append(_indent(ctx.artifacts["prune"].describe()))

    lines.append(explain_problem(problem))

    lines.append(f"Steps 5+6 — synthesis ({engine}):")
    try:
        out = make_engine(engine).synthesize(problem, ctx=ctx)
    except ReproError as exc:
        lines.append(f"  FAILED: {exc}")
        lines.extend(_trace_lines(ctx.trace))
        return "\n".join(lines)
    lines.append(f"  codelet: {out.codelet}")
    lines.append(
        f"  size={out.size} APIs, {out.elapsed_seconds * 1000:.1f} ms"
    )
    stats = out.stats.as_dict()
    lines.append(
        "  combinations={combinations} pruned_grammar={pruned_grammar} "
        "pruned_size={pruned_size} merged={merged}".format(**stats)
    )
    if examples:
        lines.extend(_verification_lines(domain, problem, out, ctx, engine,
                                         examples))
    lines.extend(_trace_lines(ctx.trace))
    return "\n".join(lines)


def _verification_lines(
    domain: Domain, problem, out, ctx, engine: str, examples
) -> List[str]:
    """The execution-guided verification section of the walk-through."""
    from repro.synthesis.pipeline import DEFAULT_TOP_K
    from repro.synthesis.ranking import alternative_outcomes
    from repro.synthesis.stages import VERIFY_STAGE_NAME, record_span
    from repro.verify.examples import normalize_examples
    from repro.verify.executors import get_executor
    from repro.verify.verifier import verify_candidates

    lines = ["Verification — execution-guided re-ranking:"]
    normalized = normalize_examples(examples)
    executor = get_executor(domain.name)
    outs = alternative_outcomes(
        problem, out, make_engine(engine), ctx.deadline, DEFAULT_TOP_K
    )
    started = time.monotonic()
    report = verify_candidates(
        executor,
        [(i + 1, o.codelet) for i, o in enumerate(outs)],
        normalized,
        ctx.deadline,
    )
    record_span(
        ctx,
        VERIFY_STAGE_NAME,
        started,
        status=(
            "exhausted" if report.status == "deadline_exhausted" else "ok"
        ),
    )
    lines.append(
        f"  {len(normalized)} example(s), {len(outs)} candidate(s), "
        f"status={report.status}"
    )
    for verdict in report.verdicts:
        detail = f" — {verdict.detail}" if verdict.detail else ""
        lines.append(
            f"  rank {verdict.rank}: {verdict.verdict} "
            f"({verdict.examples_passed}/{verdict.examples_total})"
            f"{detail}"
        )
        lines.append(f"      {verdict.codelet}")
    winner = outs[report.winner_rank - 1]
    if report.reranked:
        lines.append(
            f"  promoted rank {report.winner_rank}: {winner.codelet}"
        )
    else:
        lines.append(f"  kept rank {report.winner_rank}: {winner.codelet}")
    return lines
