"""HTTP front end: a stdlib ``ThreadingHTTPServer`` over the service.

Endpoints (docs/serving.md is the reference):

* ``POST /synthesize`` — JSON body per :mod:`repro.server.protocol`;
  returns the shared per-query payload (``BatchItem.to_json()`` shape).
  ``"include_trace": true`` attaches the per-stage trace of the six-step
  pipeline to the response (docs/architecture.md).
  A 429 (``overloaded``) response carries the scheduler's backpressure
  hint both as ``error.retry_after_ms`` and as a standard ``Retry-After``
  header (seconds, rounded up).
* ``POST /admin/reload`` — hot reload: re-read pack-backed domains from
  disk (an edited pack swaps in a freshly built Domain) and atomically
  swap freshly loaded cache snapshots (and process-pool workers) without
  dropping in-flight or queued work; body is optional
  ``{"cache_dir": "..."}``.
* ``GET /healthz`` — readiness: 200 while serving, 503 while draining;
  body reports domains, snapshot provenance, cache occupancy, inflight,
  and the scheduler's queue/budget state.
* ``GET /stats`` — cumulative PathCache counters per domain plus request
  counters (the service-level view of ``SynthesisStats``), the scheduler
  section, and a ``stages`` section with per-stage p50/p99 latency over
  recent traffic (docs/architecture.md; capacity planning).
* ``GET /domains`` — the served domain names plus per-domain provenance
  (API count, grammar hash, and — for pack-backed domains — the pack
  name / version / source directory; see docs/domain_packs.md).

Each request is handled on its own thread (``ThreadingHTTPServer``), so
concurrency is bounded by the service's request scheduler, not the
transport — excess requests wait in its bounded queue (backpressure)
instead of piling onto sockets.  :func:`run_http` is the blocking entry
point used by ``repro serve --http``: it installs SIGINT/SIGTERM handlers
that stop the accept loop, drain in-flight requests, and close the
service — a served request is never cut off mid-synthesis by a polite
shutdown — and a SIGHUP handler that triggers the same hot reload as
``POST /admin/reload``.
"""

from __future__ import annotations

import json
import math
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.server.protocol import error_response
from repro.server.service import SynthesisService

#: Largest accepted request body; a synthesis query is a sentence, so
#: anything close to this is a client bug, not a workload.
MAX_BODY_BYTES = 1 << 20


class SynthesisHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a :class:`SynthesisService`."""

    #: Handler threads are daemonic so one wedged request cannot block
    #: process exit; the graceful path drains via the service instead.
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SynthesisService,
        *,
        sock: Optional[Any] = None,
    ):
        if sock is None:
            super().__init__(address, _Handler)
        else:
            # Adopt a listener bound (and listen()-ed) by someone else —
            # the pre-fork supervisor hands every worker the same socket
            # so the kernel load-balances accepts across processes.
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()
            self.socket = sock
            self.server_address = sock.getsockname()[:2]
            host, port = self.server_address
            self.server_name = host
            self.server_port = port
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    #: Advertise HTTP/1.1 (keep-alive) so clients can reuse connections.
    protocol_version = "HTTP/1.1"
    server: SynthesisHTTPServer

    # ------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.rstrip("/")
        if path == "/admin/reload":
            self._handle_reload()
            return
        if path != "/synthesize":
            # Consume the (ignored) body first: on a keep-alive
            # connection, unread body bytes would be parsed as the next
            # request line.
            self._discard_body()
            self._send(*error_response(
                "not_found", f"no such endpoint: POST {self.path}"
            ))
            return
        error, body = self._read_json()
        if error is not None:
            self._send(*error)
            return
        self._send(*self.server.service.handle_payload(body))

    def _handle_reload(self) -> None:
        """POST /admin/reload: swap in fresh cache snapshots.  Optional
        body ``{"cache_dir": "..."}`` redirects the snapshot directory."""
        error, body = self._read_json()
        if error is not None:
            self._send(*error)
            return
        cache_dir = None
        if isinstance(body, dict):
            cache_dir = body.get("cache_dir")
            if cache_dir is not None and not isinstance(cache_dir, str):
                self._send(*error_response(
                    "bad_request", "'cache_dir' must be a string"
                ))
                return
            unknown = sorted(set(body) - {"cache_dir"})
            if unknown:
                self._send(*error_response(
                    "bad_request", f"unknown reload field(s): {unknown}"
                ))
                return
        elif body is not None:
            self._send(*error_response(
                "bad_request", "reload body must be a JSON object"
            ))
            return
        try:
            result = self.server.service.reload_snapshots(cache_dir)
        except Exception as exc:  # the service must stay up
            self._send(*error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            ))
            return
        # Multi-worker serving: one worker handled this request, but the
        # operator meant "reload the server" — ask the supervisor to
        # SIGHUP every worker.  (Signal-triggered reloads do not
        # re-notify, so the fan-out terminates.)
        board = getattr(self.server.service, "worker_board", None)
        if board is not None:
            try:
                board.notify_siblings_reload()
            except Exception:
                pass  # this worker's reload already succeeded
        self._send(200, result)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            health = service.health()
            self._send(503 if health["status"] == "draining" else 200, health)
        elif path == "/stats":
            self._send(200, service.stats())
        elif path == "/domains":
            # "domains" stays the plain name list (the stable shape);
            # "details" adds per-domain provenance: API count, grammar
            # hash, and pack name/version/source for pack-backed domains.
            self._send(200, {
                "domains": list(service.domain_names()),
                "details": service.domain_info(),
            })
        else:
            self._send(*error_response(
                "not_found", f"no such endpoint: GET {self.path}"
            ))

    # ------------------------------------------------------------------

    def _discard_body(self) -> None:
        """Drain an unread request body so the keep-alive stream stays
        framed; when the declared length is untrustworthy, close the
        connection after the response instead."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if 0 <= length <= MAX_BODY_BYTES:
            if length:
                self.rfile.read(length)
        else:
            self.close_connection = True

    def _read_json(self):
        """Returns ``(None, decoded_body)`` or ``((status, payload), None)``
        for a body that cannot be decoded."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # The body cannot be safely skipped, so the connection must
            # not be reused after this error response.
            self.close_connection = True
            return (
                error_response(
                    "bad_request",
                    "Content-Length required and must be "
                    f"0..{MAX_BODY_BYTES}",
                ),
                None,
            )
        if length == 0:
            return None, None  # endpoints decide whether a body is required
        raw = self.rfile.read(length)
        try:
            return None, json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return (
                error_response("bad_request", f"malformed JSON body: {exc}"),
                None,
            )

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        retry_after_ms = (
            (payload.get("error") or {}).get("retry_after_ms")
            if status == 429 else None
        )
        if retry_after_ms is not None:
            # Standard backpressure surface for generic HTTP clients:
            # whole seconds, rounded up so "soon" never reads as "now".
            self.send_header(
                "Retry-After", str(max(1, math.ceil(retry_after_ms / 1000)))
            )
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Quiet by default; the CLI owns user-facing logging."""


def start_http_server(
    service: SynthesisService, host: str = "127.0.0.1", port: int = 0
) -> SynthesisHTTPServer:
    """Bind and start serving on a background thread (tests and embedders;
    ``port=0`` picks a free port — read it back from ``server.port``).
    Caller owns shutdown: ``server.shutdown()`` then ``service`` drain."""
    server = SynthesisHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-http",
        daemon=True,
    )
    thread.start()
    return server


def run_http(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    grace_seconds: float = 30.0,
    install_signal_handlers: bool = True,
    on_ready=None,
    sock: Optional[Any] = None,
) -> bool:
    """Serve until SIGINT/SIGTERM, then drain gracefully.

    Returns True when the drain finished inside ``grace_seconds`` (the
    CLI turns False into a non-zero exit code).  ``on_ready(server)`` is
    invoked once the socket is bound — the CLI uses it to print the
    listening address.  ``sock`` serves on an already-bound listening
    socket instead of binding ``(host, port)`` (the pre-fork worker
    path; see :mod:`repro.server.multiproc`).
    """
    server = SynthesisHTTPServer((host, port), service, sock=sock)
    if on_ready is not None:
        on_ready(server)

    if install_signal_handlers:
        previous: Dict[int, Any] = {}

        def _handle(signum: int, frame: Optional[Any]) -> None:
            service.begin_shutdown()
            # shutdown() blocks until serve_forever() exits, and the
            # handler runs on the thread that is inside serve_forever —
            # stop the loop from a helper thread to avoid the deadlock.
            threading.Thread(target=server.shutdown, daemon=True).start()

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _handle)

        if hasattr(signal, "SIGHUP"):  # pragma: no branch - POSIX only
            def _handle_hup(signum: int, frame: Optional[Any]) -> None:
                # Reload off the signal context so the accept loop never
                # stalls on snapshot IO; errors must not kill the server.
                def _reload() -> None:
                    try:
                        service.reload_snapshots()
                    except Exception:
                        pass  # /healthz still reports the old snapshots

                threading.Thread(
                    target=_reload, name="repro-sighup-reload", daemon=True
                ).start()

            previous[signal.SIGHUP] = signal.signal(
                signal.SIGHUP, _handle_hup
            )

    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        if install_signal_handlers:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        service.begin_shutdown()
        drained = service.drain(grace_seconds=grace_seconds)
        server.server_close()
        service.close()
    return drained
