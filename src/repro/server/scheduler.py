"""Request scheduler: bounded queueing, backpressure, per-domain budgets.

:class:`RequestScheduler` sits between the serving transports and request
dispatch inside :class:`~repro.server.service.SynthesisService`.  It owns
every admission decision the service makes:

* **bounded queue with backpressure** — up to ``queue_depth`` requests
  wait for an execution slot instead of being shed.  Only when the queue
  itself is full does a request fail with :class:`QueueFull`, which
  carries a ``retry_after_ms`` hint derived from the observed service
  time (HTTP surfaces it as a ``Retry-After`` header on 429).  With
  ``queue_depth=0`` (the default) admission is exactly the pre-scheduler
  behaviour: at capacity, shed immediately.
* **deadline-aware scheduling** — a queued request's wait is bounded by
  its own synthesis budget.  When the deadline passes while the request
  is still waiting it fails with
  :class:`~repro.errors.DeadlineExceeded` *before* dispatch — an expired
  request never burns a worker slot.  The wait that was spent in the
  queue is deducted from the budget handed to the engines, so the
  request's deadline covers queueing *and* synthesis.
* **per-domain concurrency budgets** — each domain may use at most
  ``budget[domain]`` of the ``max_inflight`` slots, so one hot domain
  cannot starve the rest.  Budgets default to a fair share
  (``ceil(max_inflight / n_domains)``) when queueing is enabled and to
  ``max_inflight`` (no constraint beyond the global bound) in the
  legacy ``queue_depth=0`` mode, preserving its exact semantics.
* **priority classes** — every request carries a priority from
  :data:`PRIORITIES` (``interactive`` > ``batch``; the default is
  ``interactive``, which is also the exact pre-priority behaviour).
  Admission is strict-priority: whenever a slot frees, *every*
  dispatchable interactive waiter is granted before any batch waiter is
  considered; within one class order stays FIFO-with-eligibility.  When
  the queue is full an arriving interactive request evicts the youngest
  waiting batch request (which sheds with ``QueueFull`` and the usual
  retry hint) instead of being shed itself — batch traffic can never
  make the server turn interactive traffic away while batch work is
  still waiting.
* **adaptive tuning** (``adaptive=True``) — the scheduler resizes its
  own effective queue using the live EWMA service time: a queue slot is
  only useful if the wait it implies fits inside the target deadline,
  so the effective capacity is
  ``clamp(max_inflight * (target_deadline / ewma - 1), 1, queue_depth)``
  (the capacity-planning rule of thumb from docs/serving.md, applied
  continuously).  Fast service ⇒ the full configured queue; slow
  service ⇒ shed early instead of queueing requests that are doomed to
  expire.  Adaptive mode also makes implicit (fair-share) domain
  budgets *work-conserving*: while no other domain has a waiter, a
  domain may use every slot; the moment another domain queues, the
  fair-share fence is restored and the hot domain drains back to it.
  Budgets set explicitly via ``domain_budgets`` are hard fences and are
  never raised.

Dispatch order is FIFO with eligibility inside each priority class: the
oldest waiter whose domain is under budget runs first; a waiter blocked
on its domain's budget does not block younger waiters of other domains
(no cross-domain head-of-line blocking).  Within one domain and class,
order is strictly FIFO.

The scheduler is also the service's single source of truth for in-flight
accounting: :meth:`begin_shutdown` wakes every waiter with
:class:`SchedulerDraining` and :meth:`drain` blocks until the last
granted slot is released — the graceful-shutdown sequence both front
ends rely on.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Mapping, Optional, Tuple

from repro.errors import DeadlineExceeded, ReproError

__all__ = [
    "Grant",
    "PRIORITIES",
    "QueueFull",
    "RequestScheduler",
    "SchedulerDraining",
]

#: Admission classes, highest priority first.  The first entry is the
#: default for requests that do not specify one.
PRIORITIES: Tuple[str, ...] = ("interactive", "batch")

#: Floor / ceiling for the ``retry_after_ms`` backpressure hint.
MIN_RETRY_AFTER_MS = 50
MAX_RETRY_AFTER_MS = 60_000

#: Assumed service time (seconds) for the retry hint before any request
#: has completed — deliberately pessimistic for a cold server.
DEFAULT_SERVICE_SECONDS = 0.1

#: EWMA smoothing for the observed per-request service time.
_EWMA_ALPHA = 0.2

#: Fallback deadline (seconds) for adaptive queue sizing when the
#: caller does not provide one (matches ServerConfig.default_timeout).
DEFAULT_TARGET_DEADLINE_SECONDS = 20.0

# Waiter lifecycle: exactly one transition away from WAITING, performed
# under the scheduler lock by whoever decides the outcome (the pump on
# grant/expiry, begin_shutdown on drain, an arriving interactive request
# on evict, the waiter thread on its own deadline) — so every waiter is
# counted exactly once.
_WAITING = "waiting"
_GRANTED = "granted"
_EXPIRED = "expired"
_DRAINING = "draining"
_EVICTED = "evicted"


class QueueFull(ReproError):
    """Admission failed: no free slot and the wait queue is at capacity
    (or queueing is disabled), or a queued batch request was evicted to
    make room for an interactive one.  Maps to the stable ``overloaded``
    wire code; ``retry_after_ms`` is the backpressure hint."""

    def __init__(self, message: str, retry_after_ms: int):
        self.retry_after_ms = retry_after_ms
        super().__init__(message)


class SchedulerDraining(ReproError):
    """Admission failed: the scheduler is shutting down.  Maps to the
    stable ``shutting_down`` wire code."""


@dataclass(frozen=True)
class Grant:
    """A successfully acquired execution slot.

    ``queue_wait_seconds`` is how long the request waited for the slot
    (0 for an immediate grant); callers deduct it from the synthesis
    budget and release the slot via :meth:`RequestScheduler.release`.
    """

    domain: str
    queue_wait_seconds: float


class _Waiter:
    """One queued request (internal)."""

    __slots__ = ("domain", "priority", "deadline", "enqueued_at", "state")

    def __init__(
        self, domain: str, priority: str, deadline: float, enqueued_at: float
    ):
        self.domain = domain
        self.priority = priority
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self.state = _WAITING


class RequestScheduler:
    """Admission control for a fixed set of domains (see module docstring).

    Thread-safe; every public method may be called from any transport
    thread.  ``domain_budgets`` maps domain name -> slot budget; domains
    not listed get the default described in the module docstring.
    ``adaptive`` turns on EWMA-driven queue sizing and work-conserving
    implicit budgets; ``target_deadline_seconds`` is the deadline the
    adaptive queue sizes against (typically the service's default
    request timeout).
    """

    def __init__(
        self,
        *,
        max_inflight: int,
        queue_depth: int = 0,
        domains: Tuple[str, ...] = (),
        domain_budgets: Optional[Mapping[str, int]] = None,
        adaptive: bool = False,
        target_deadline_seconds: Optional[float] = None,
    ):
        if max_inflight < 1:
            raise ReproError("max_inflight must be >= 1")
        if queue_depth < 0:
            raise ReproError("queue_depth must be >= 0")
        if adaptive and queue_depth < 1:
            raise ReproError("adaptive tuning requires queue_depth >= 1")
        if not domains:
            raise ReproError("the scheduler needs at least one domain")
        if target_deadline_seconds is not None and target_deadline_seconds <= 0:
            raise ReproError("target_deadline_seconds must be positive")
        budgets = dict(domain_budgets or {})
        unknown = sorted(set(budgets) - set(domains))
        if unknown:
            raise ReproError(
                f"domain budget(s) for unserved domain(s) {unknown}; "
                f"served: {sorted(domains)}"
            )
        for name, value in budgets.items():
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ReproError(
                    f"domain budget for {name!r} must be a positive "
                    f"integer, got {value!r}"
                )

        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.adaptive = adaptive
        self._target_deadline_seconds = (
            target_deadline_seconds
            if target_deadline_seconds is not None
            else DEFAULT_TARGET_DEADLINE_SECONDS
        )
        if queue_depth > 0:
            default_budget = max(1, math.ceil(max_inflight / len(domains)))
        else:
            # Legacy mode: the global bound is the only constraint.
            default_budget = max_inflight
        #: Domains with an operator-set budget: hard fences that adaptive
        #: mode never raises.
        self._explicit_budgets = frozenset(budgets)
        self.budgets: Dict[str, int] = {
            name: min(max_inflight, budgets.get(name, default_budget))
            for name in domains
        }

        self._cond = threading.Condition(threading.Lock())
        self._inflight_total = 0
        self._inflight: Dict[str, int] = {name: 0 for name in domains}
        self._waiters: Deque[_Waiter] = deque()
        self._draining = False
        self._service_ewma_seconds: Optional[float] = None
        self._counters: Dict[str, int] = {
            "admitted": 0,       # granted a slot (immediately or queued)
            "queued": 0,         # of which waited in the queue first
            "completed": 0,      # slots released after dispatch
            "shed": 0,           # rejected: queue full / queueing disabled
            "expired": 0,        # deadline passed while waiting
            "evicted": 0,        # batch waiter displaced by interactive
            "drained": 0,        # rejected or woken by shutdown
        }
        self._priority_counters: Dict[str, Dict[str, int]] = {
            priority: {
                "admitted": 0,
                "queued": 0,
                "shed": 0,
                "expired": 0,
                "evicted": 0,
                "drained": 0,
            }
            for priority in PRIORITIES
        }
        self._queue_wait_total_ms = 0.0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def queueing_enabled(self) -> bool:
        return self.queue_depth > 0

    def acquire(
        self,
        domain: str,
        timeout_seconds: float,
        priority: str = PRIORITIES[0],
    ) -> Grant:
        """Acquire an execution slot for ``domain``, waiting up to
        ``timeout_seconds`` (the request's whole budget) when queueing is
        enabled.  ``priority`` is one of :data:`PRIORITIES`.

        Raises :class:`QueueFull` (shed or evicted),
        :class:`SchedulerDraining` (shutdown), or
        :class:`~repro.errors.DeadlineExceeded` (the budget elapsed
        while waiting).
        """
        if domain not in self._inflight:
            raise ReproError(f"unknown scheduler domain {domain!r}")
        if priority not in PRIORITIES:
            raise ReproError(
                f"unknown priority {priority!r}; expected one of "
                f"{list(PRIORITIES)}"
            )
        now = time.monotonic()
        with self._cond:
            if self._draining:
                self._counters["drained"] += 1
                self._priority_counters[priority]["drained"] += 1
                raise SchedulerDraining(
                    "service is draining; retry against another replica"
                )
            # Immediate grants cannot jump a grantable higher-priority
            # waiter: release() pumps before dropping the lock, so any
            # waiter still queued here is blocked on its domain budget,
            # not on a free slot.
            if self._can_dispatch(domain):
                self._admit(domain, priority)
                return Grant(domain, 0.0)
            if self._waiting_count() >= self._effective_queue_capacity():
                if priority == PRIORITIES[0] and self._evict_batch_waiter():
                    pass  # a batch slot was freed for this request
                else:
                    self._counters["shed"] += 1
                    self._priority_counters[priority]["shed"] += 1
                    raise QueueFull(
                        self._shed_message(), self._retry_after_ms_locked()
                    )
            waiter = _Waiter(domain, priority, now + timeout_seconds, now)
            self._waiters.append(waiter)
            try:
                while waiter.state == _WAITING:
                    remaining = waiter.deadline - time.monotonic()
                    if remaining <= 0:
                        waiter.state = _EXPIRED
                        self._counters["expired"] += 1
                        self._priority_counters[priority]["expired"] += 1
                        break
                    self._cond.wait(timeout=remaining)
            finally:
                if waiter.state != _GRANTED:
                    self._discard(waiter)
            waited = time.monotonic() - waiter.enqueued_at
            if waiter.state == _GRANTED:
                self._counters["queued"] += 1
                self._priority_counters[priority]["queued"] += 1
                self._queue_wait_total_ms += waited * 1000.0
                return Grant(domain, waited)
            if waiter.state == _DRAINING:
                raise SchedulerDraining(
                    "service is draining; retry against another replica"
                )
            if waiter.state == _EVICTED:
                raise QueueFull(
                    "evicted from the queue by an interactive request; "
                    "retry after the hint",
                    self._retry_after_ms_locked(),
                )
            raise DeadlineExceeded(waited)

    def release(
        self, domain: str, *, service_seconds: Optional[float] = None
    ) -> None:
        """Return a granted slot.  ``service_seconds`` (dispatch wall
        time) feeds the EWMA behind the ``retry_after_ms`` hint and the
        adaptive queue capacity."""
        with self._cond:
            self._inflight_total -= 1
            self._inflight[domain] -= 1
            self._counters["completed"] += 1
            if service_seconds is not None and service_seconds >= 0:
                if self._service_ewma_seconds is None:
                    self._service_ewma_seconds = service_seconds
                else:
                    self._service_ewma_seconds += _EWMA_ALPHA * (
                        service_seconds - self._service_ewma_seconds
                    )
            self._pump()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Internals (all called with the lock held)
    # ------------------------------------------------------------------

    def _waiting_count(self) -> int:
        return sum(1 for w in self._waiters if w.state == _WAITING)

    def _effective_queue_capacity(self) -> int:
        """The live queue bound.  Static ``queue_depth`` normally; under
        ``adaptive`` it shrinks when the EWMA service time says queued
        requests would blow the target deadline anyway (never below 1,
        never above the configured depth)."""
        if not self.adaptive:
            return self.queue_depth
        service = self._service_ewma_seconds
        if service is None or service <= 0:
            return self.queue_depth
        headroom = self._target_deadline_seconds / service - 1.0
        bound = int(self.max_inflight * headroom)
        return max(1, min(self.queue_depth, bound))

    def _effective_budget(self, domain: str) -> int:
        """The live slot budget for ``domain``.  Explicit budgets are
        hard fences; under ``adaptive`` an implicit (fair-share) budget
        is work-conserving — the whole server while nobody else waits,
        the fair share the moment another domain queues."""
        budget = self.budgets[domain]
        if not self.adaptive or domain in self._explicit_budgets:
            return budget
        for waiter in self._waiters:
            if waiter.state == _WAITING and waiter.domain != domain:
                return budget
        return self.max_inflight

    def _can_dispatch(self, domain: str) -> bool:
        return (
            self._inflight_total < self.max_inflight
            and self._inflight[domain] < self._effective_budget(domain)
        )

    def _admit(self, domain: str, priority: str) -> None:
        self._inflight_total += 1
        self._inflight[domain] += 1
        self._counters["admitted"] += 1
        self._priority_counters[priority]["admitted"] += 1

    def _evict_batch_waiter(self) -> bool:
        """Displace the youngest waiting batch request to admit an
        interactive one into a full queue.  Returns False when every
        waiter is interactive (the arrival sheds instead)."""
        for waiter in reversed(self._waiters):
            if waiter.state == _WAITING and waiter.priority != PRIORITIES[0]:
                waiter.state = _EVICTED
                self._counters["evicted"] += 1
                self._priority_counters[waiter.priority]["evicted"] += 1
                self._discard(waiter)
                self._cond.notify_all()
                return True
        return False

    def _pump(self) -> None:
        """Grant slots to waiters: strict priority across classes,
        oldest-first within a class, skipping waiters whose domain is at
        budget (they keep their place), expiring waiters whose deadline
        passed."""
        if not self._waiters:
            return
        now = time.monotonic()
        for waiter in self._waiters:
            if waiter.state == _WAITING and waiter.deadline <= now:
                waiter.state = _EXPIRED
                self._counters["expired"] += 1
                self._priority_counters[waiter.priority]["expired"] += 1
        for priority in PRIORITIES:
            for waiter in self._waiters:
                if (
                    waiter.state == _WAITING
                    and waiter.priority == priority
                    and self._can_dispatch(waiter.domain)
                ):
                    waiter.state = _GRANTED
                    self._admit(waiter.domain, priority)
        self._waiters = deque(
            w for w in self._waiters if w.state == _WAITING
        )

    def _discard(self, waiter: _Waiter) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass  # the pump already dropped it

    def _shed_message(self) -> str:
        if not self.queueing_enabled:
            return (
                f"at capacity ({self.max_inflight} in flight); "
                "retry with backoff"
            )
        return (
            f"queue full ({self._waiting_count()} waiting, "
            f"{self._inflight_total} in flight); retry after the hint"
        )

    def _retry_after_ms_locked(self) -> int:
        service = self._service_ewma_seconds
        if service is None or service <= 0:
            service = DEFAULT_SERVICE_SECONDS
        # Rough time until a queue slot frees: the backlog ahead of a
        # retrying client, drained max_inflight at a time.
        backlog = self._waiting_count() + 1
        hint = service * backlog / self.max_inflight
        return max(
            MIN_RETRY_AFTER_MS, min(MAX_RETRY_AFTER_MS, int(hint * 1000))
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_shutdown(self) -> None:
        """Stop admitting; every queued waiter fails with
        :class:`SchedulerDraining`.  Granted slots keep running."""
        with self._cond:
            self._draining = True
            for waiter in self._waiters:
                if waiter.state == _WAITING:
                    waiter.state = _DRAINING
                    self._counters["drained"] += 1
                    self._priority_counters[waiter.priority]["drained"] += 1
            self._waiters.clear()
            self._cond.notify_all()

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Block until every granted slot is released.  Returns False if
        ``grace_seconds`` elapsed with work still in flight."""
        deadline = (
            None if grace_seconds is None
            else time.monotonic() + grace_seconds
        )
        with self._cond:
            while self._inflight_total > 0:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight_total(self) -> int:
        with self._cond:
            return self._inflight_total

    @property
    def queued(self) -> int:
        with self._cond:
            return self._waiting_count()

    def snapshot(self) -> Dict[str, Any]:
        """The scheduler section of ``/stats`` and ``/healthz``."""
        with self._cond:
            queued_by_domain: Dict[str, int] = {
                name: 0 for name in self._inflight
            }
            queued_by_priority: Dict[str, int] = {
                name: 0 for name in PRIORITIES
            }
            for waiter in self._waiters:
                if waiter.state == _WAITING:
                    queued_by_domain[waiter.domain] += 1
                    queued_by_priority[waiter.priority] += 1
            served = self._counters["queued"]
            avg_wait = (
                round(self._queue_wait_total_ms / served, 3) if served else 0.0
            )
            return {
                "queueing_enabled": self.queueing_enabled,
                "queue_depth": sum(queued_by_domain.values()),
                "queue_capacity": self.queue_depth,
                "effective_queue_capacity": self._effective_queue_capacity(),
                "adaptive": self.adaptive,
                "max_inflight": self.max_inflight,
                "inflight": self._inflight_total,
                "avg_queue_wait_ms": avg_wait,
                "counters": dict(self._counters),
                "priorities": {
                    name: {
                        "queued": queued_by_priority[name],
                        "counters": dict(self._priority_counters[name]),
                    }
                    for name in PRIORITIES
                },
                "domains": {
                    name: {
                        "inflight": self._inflight[name],
                        "budget": self.budgets[name],
                        "effective_budget": self._effective_budget(name),
                        "queued": queued_by_domain[name],
                    }
                    for name in sorted(self._inflight)
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestScheduler(inflight={self.inflight_total}/"
            f"{self.max_inflight}, queue={self.queued}/{self.queue_depth})"
        )
