"""Request scheduler: bounded queueing, backpressure, per-domain budgets.

:class:`RequestScheduler` sits between the serving transports and request
dispatch inside :class:`~repro.server.service.SynthesisService`.  It owns
every admission decision the service makes:

* **bounded queue with backpressure** — up to ``queue_depth`` requests
  wait for an execution slot instead of being shed.  Only when the queue
  itself is full does a request fail with :class:`QueueFull`, which
  carries a ``retry_after_ms`` hint derived from the observed service
  time (HTTP surfaces it as a ``Retry-After`` header on 429).  With
  ``queue_depth=0`` (the default) admission is exactly the pre-scheduler
  behaviour: at capacity, shed immediately.
* **deadline-aware scheduling** — a queued request's wait is bounded by
  its own synthesis budget.  When the deadline passes while the request
  is still waiting it fails with
  :class:`~repro.errors.DeadlineExceeded` *before* dispatch — an expired
  request never burns a worker slot.  The wait that was spent in the
  queue is deducted from the budget handed to the engines, so the
  request's deadline covers queueing *and* synthesis.
* **per-domain concurrency budgets** — each domain may use at most
  ``budget[domain]`` of the ``max_inflight`` slots, so one hot domain
  cannot starve the rest.  Budgets default to a fair share
  (``ceil(max_inflight / n_domains)``) when queueing is enabled and to
  ``max_inflight`` (no constraint beyond the global bound) in the
  legacy ``queue_depth=0`` mode, preserving its exact semantics.

Dispatch order is FIFO with eligibility: the oldest waiter whose domain
is under budget runs first; a waiter blocked on its domain's budget does
not block younger waiters of other domains (no cross-domain head-of-line
blocking).  Within one domain, order is strictly FIFO.

The scheduler is also the service's single source of truth for in-flight
accounting: :meth:`begin_shutdown` wakes every waiter with
:class:`SchedulerDraining` and :meth:`drain` blocks until the last
granted slot is released — the graceful-shutdown sequence both front
ends rely on.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Mapping, Optional, Tuple

from repro.errors import DeadlineExceeded, ReproError

__all__ = [
    "Grant",
    "QueueFull",
    "RequestScheduler",
    "SchedulerDraining",
]

#: Floor / ceiling for the ``retry_after_ms`` backpressure hint.
MIN_RETRY_AFTER_MS = 50
MAX_RETRY_AFTER_MS = 60_000

#: Assumed service time (seconds) for the retry hint before any request
#: has completed — deliberately pessimistic for a cold server.
DEFAULT_SERVICE_SECONDS = 0.1

#: EWMA smoothing for the observed per-request service time.
_EWMA_ALPHA = 0.2

# Waiter lifecycle: exactly one transition away from WAITING, performed
# under the scheduler lock by whoever decides the outcome (the pump on
# grant/expiry, begin_shutdown on drain, the waiter thread on its own
# deadline) — so every waiter is counted exactly once.
_WAITING = "waiting"
_GRANTED = "granted"
_EXPIRED = "expired"
_DRAINING = "draining"


class QueueFull(ReproError):
    """Admission failed: no free slot and the wait queue is at capacity
    (or queueing is disabled).  Maps to the stable ``overloaded`` wire
    code; ``retry_after_ms`` is the backpressure hint."""

    def __init__(self, message: str, retry_after_ms: int):
        self.retry_after_ms = retry_after_ms
        super().__init__(message)


class SchedulerDraining(ReproError):
    """Admission failed: the scheduler is shutting down.  Maps to the
    stable ``shutting_down`` wire code."""


@dataclass(frozen=True)
class Grant:
    """A successfully acquired execution slot.

    ``queue_wait_seconds`` is how long the request waited for the slot
    (0 for an immediate grant); callers deduct it from the synthesis
    budget and release the slot via :meth:`RequestScheduler.release`.
    """

    domain: str
    queue_wait_seconds: float


class _Waiter:
    """One queued request (internal)."""

    __slots__ = ("domain", "deadline", "enqueued_at", "state")

    def __init__(self, domain: str, deadline: float, enqueued_at: float):
        self.domain = domain
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self.state = _WAITING


class RequestScheduler:
    """Admission control for a fixed set of domains (see module docstring).

    Thread-safe; every public method may be called from any transport
    thread.  ``domain_budgets`` maps domain name -> slot budget; domains
    not listed get the default described in the module docstring.
    """

    def __init__(
        self,
        *,
        max_inflight: int,
        queue_depth: int = 0,
        domains: Tuple[str, ...] = (),
        domain_budgets: Optional[Mapping[str, int]] = None,
    ):
        if max_inflight < 1:
            raise ReproError("max_inflight must be >= 1")
        if queue_depth < 0:
            raise ReproError("queue_depth must be >= 0")
        if not domains:
            raise ReproError("the scheduler needs at least one domain")
        budgets = dict(domain_budgets or {})
        unknown = sorted(set(budgets) - set(domains))
        if unknown:
            raise ReproError(
                f"domain budget(s) for unserved domain(s) {unknown}; "
                f"served: {sorted(domains)}"
            )
        for name, value in budgets.items():
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ReproError(
                    f"domain budget for {name!r} must be a positive "
                    f"integer, got {value!r}"
                )

        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        if queue_depth > 0:
            default_budget = max(1, math.ceil(max_inflight / len(domains)))
        else:
            # Legacy mode: the global bound is the only constraint.
            default_budget = max_inflight
        self.budgets: Dict[str, int] = {
            name: min(max_inflight, budgets.get(name, default_budget))
            for name in domains
        }

        self._cond = threading.Condition(threading.Lock())
        self._inflight_total = 0
        self._inflight: Dict[str, int] = {name: 0 for name in domains}
        self._waiters: Deque[_Waiter] = deque()
        self._draining = False
        self._service_ewma_seconds: Optional[float] = None
        self._counters: Dict[str, int] = {
            "admitted": 0,       # granted a slot (immediately or queued)
            "queued": 0,         # of which waited in the queue first
            "completed": 0,      # slots released after dispatch
            "shed": 0,           # rejected: queue full / queueing disabled
            "expired": 0,        # deadline passed while waiting
            "drained": 0,        # rejected or woken by shutdown
        }
        self._queue_wait_total_ms = 0.0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def queueing_enabled(self) -> bool:
        return self.queue_depth > 0

    def acquire(self, domain: str, timeout_seconds: float) -> Grant:
        """Acquire an execution slot for ``domain``, waiting up to
        ``timeout_seconds`` (the request's whole budget) when queueing is
        enabled.

        Raises :class:`QueueFull` (shed), :class:`SchedulerDraining`
        (shutdown), or :class:`~repro.errors.DeadlineExceeded` (the
        budget elapsed while waiting).
        """
        if domain not in self._inflight:
            raise ReproError(f"unknown scheduler domain {domain!r}")
        now = time.monotonic()
        with self._cond:
            if self._draining:
                self._counters["drained"] += 1
                raise SchedulerDraining(
                    "service is draining; retry against another replica"
                )
            if self._can_dispatch(domain):
                self._admit(domain)
                return Grant(domain, 0.0)
            if len(self._waiters) >= self.queue_depth:
                self._counters["shed"] += 1
                raise QueueFull(
                    self._shed_message(), self._retry_after_ms_locked()
                )
            waiter = _Waiter(domain, now + timeout_seconds, now)
            self._waiters.append(waiter)
            try:
                while waiter.state == _WAITING:
                    remaining = waiter.deadline - time.monotonic()
                    if remaining <= 0:
                        waiter.state = _EXPIRED
                        self._counters["expired"] += 1
                        break
                    self._cond.wait(timeout=remaining)
            finally:
                if waiter.state != _GRANTED:
                    self._discard(waiter)
            waited = time.monotonic() - waiter.enqueued_at
            if waiter.state == _GRANTED:
                self._counters["queued"] += 1
                self._queue_wait_total_ms += waited * 1000.0
                return Grant(domain, waited)
            if waiter.state == _DRAINING:
                raise SchedulerDraining(
                    "service is draining; retry against another replica"
                )
            raise DeadlineExceeded(waited)

    def release(
        self, domain: str, *, service_seconds: Optional[float] = None
    ) -> None:
        """Return a granted slot.  ``service_seconds`` (dispatch wall
        time) feeds the EWMA behind the ``retry_after_ms`` hint."""
        with self._cond:
            self._inflight_total -= 1
            self._inflight[domain] -= 1
            self._counters["completed"] += 1
            if service_seconds is not None and service_seconds >= 0:
                if self._service_ewma_seconds is None:
                    self._service_ewma_seconds = service_seconds
                else:
                    self._service_ewma_seconds += _EWMA_ALPHA * (
                        service_seconds - self._service_ewma_seconds
                    )
            self._pump()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Internals (all called with the lock held)
    # ------------------------------------------------------------------

    def _can_dispatch(self, domain: str) -> bool:
        return (
            self._inflight_total < self.max_inflight
            and self._inflight[domain] < self.budgets[domain]
        )

    def _admit(self, domain: str) -> None:
        self._inflight_total += 1
        self._inflight[domain] += 1
        self._counters["admitted"] += 1

    def _pump(self) -> None:
        """Grant slots to waiters: oldest-first, skipping waiters whose
        domain is at budget (they keep their place), expiring waiters
        whose deadline passed."""
        if not self._waiters:
            return
        now = time.monotonic()
        remaining: Deque[_Waiter] = deque()
        for waiter in self._waiters:
            if waiter.state != _WAITING:
                continue  # already resolved; drop from the queue
            if waiter.deadline <= now:
                waiter.state = _EXPIRED
                self._counters["expired"] += 1
                continue
            if self._can_dispatch(waiter.domain):
                waiter.state = _GRANTED
                self._admit(waiter.domain)
                continue
            remaining.append(waiter)
        self._waiters = remaining

    def _discard(self, waiter: _Waiter) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass  # the pump already dropped it

    def _shed_message(self) -> str:
        if not self.queueing_enabled:
            return (
                f"at capacity ({self.max_inflight} in flight); "
                "retry with backoff"
            )
        return (
            f"queue full ({len(self._waiters)} waiting, "
            f"{self._inflight_total} in flight); retry after the hint"
        )

    def _retry_after_ms_locked(self) -> int:
        service = self._service_ewma_seconds
        if service is None or service <= 0:
            service = DEFAULT_SERVICE_SECONDS
        # Rough time until a queue slot frees: the backlog ahead of a
        # retrying client, drained max_inflight at a time.
        backlog = len(self._waiters) + 1
        hint = service * backlog / self.max_inflight
        return max(
            MIN_RETRY_AFTER_MS, min(MAX_RETRY_AFTER_MS, int(hint * 1000))
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_shutdown(self) -> None:
        """Stop admitting; every queued waiter fails with
        :class:`SchedulerDraining`.  Granted slots keep running."""
        with self._cond:
            self._draining = True
            for waiter in self._waiters:
                if waiter.state == _WAITING:
                    waiter.state = _DRAINING
                    self._counters["drained"] += 1
            self._waiters.clear()
            self._cond.notify_all()

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Block until every granted slot is released.  Returns False if
        ``grace_seconds`` elapsed with work still in flight."""
        deadline = (
            None if grace_seconds is None
            else time.monotonic() + grace_seconds
        )
        with self._cond:
            while self._inflight_total > 0:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight_total(self) -> int:
        with self._cond:
            return self._inflight_total

    @property
    def queued(self) -> int:
        with self._cond:
            return sum(1 for w in self._waiters if w.state == _WAITING)

    def snapshot(self) -> Dict[str, Any]:
        """The scheduler section of ``/stats`` and ``/healthz``."""
        with self._cond:
            queued_by_domain: Dict[str, int] = {
                name: 0 for name in self._inflight
            }
            for waiter in self._waiters:
                if waiter.state == _WAITING:
                    queued_by_domain[waiter.domain] += 1
            served = self._counters["queued"]
            avg_wait = (
                round(self._queue_wait_total_ms / served, 3) if served else 0.0
            )
            return {
                "queueing_enabled": self.queueing_enabled,
                "queue_depth": sum(queued_by_domain.values()),
                "queue_capacity": self.queue_depth,
                "max_inflight": self.max_inflight,
                "inflight": self._inflight_total,
                "avg_queue_wait_ms": avg_wait,
                "counters": dict(self._counters),
                "domains": {
                    name: {
                        "inflight": self._inflight[name],
                        "budget": self.budgets[name],
                        "queued": queued_by_domain[name],
                    }
                    for name in sorted(self._inflight)
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestScheduler(inflight={self.inflight_total}/"
            f"{self.max_inflight}, queue={self.queued}/{self.queue_depth})"
        )
