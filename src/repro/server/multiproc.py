"""Pre-fork multi-worker HTTP serving (``repro serve --workers N``).

A single :class:`~repro.server.http.SynthesisHTTPServer` is a
``ThreadingHTTPServer``: request parsing, dispatch, and JSON
serialization all run under one GIL, so the serving layer cannot scale
past one core no matter how parallel the engines are.  This module adds
the deployment shape the paper's "near real-time under real use" claim
needs — N independent worker *processes* behind one listening port:

* **supervisor** (:func:`run_supervisor`) — the parent binds the
  listening socket once, starts ``workers`` children, and then only
  supervises: it restarts crashed workers (exponential backoff, reset
  after a healthy run), fans SIGHUP out to every worker, and on
  SIGTERM/SIGINT forwards the signal so every worker drains gracefully
  — zero dropped in-flight or queued work, exactly the single-worker
  guarantee, N times over.
* **shared listener** — on POSIX the children are forked and inherit
  the parent's bound socket, so the kernel load-balances ``accept()``
  across workers with no proxy in front.  The grammar-cache snapshots
  are loaded *once*, before the fork: every worker serves from the same
  copy-on-write pages instead of N private heaps.
* **spawn fallback** (``REPRO_SERVE_START_METHOD=spawn`` or platforms
  without ``fork``) — each worker is a fresh interpreter that binds its
  own ``SO_REUSEPORT`` listener on the same port and memory-maps the v2
  cache snapshot (``REPRO_SNAPSHOT_MMAP``), so the snapshot bytes are
  shared through the page cache even without fork.
* **aggregated observability** — every worker publishes its local
  counters to a per-worker JSON file (atomic replace) through a
  :class:`WorkerStatsBoard`; whichever worker answers ``GET /stats``
  merges all of them, so the operator sees server-wide totals plus a
  per-worker breakdown no matter which worker their connection landed
  on.
* **cluster-wide reload** — ``POST /admin/reload`` reloads the worker
  that received it, which then signals the supervisor; the supervisor
  SIGHUPs every worker, so one admin request reloads the whole server
  (signal-triggered reloads do not re-notify, which terminates the
  fan-out).

``repro serve`` with ``--workers 1`` (the default) never touches this
module — single-worker serving is byte-identical to the pre-multiproc
behaviour.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.server.http import run_http
from repro.server.service import ServerConfig, SynthesisService

__all__ = [
    "WorkerStatsBoard",
    "bind_listener",
    "run_supervisor",
    "write_port_file",
]

#: Backoff for restarting a crashed worker: doubles per crash from the
#: base, capped, and resets once a worker survives a healthy interval.
RESTART_BACKOFF_BASE_SECONDS = 0.1
RESTART_BACKOFF_MAX_SECONDS = 5.0
HEALTHY_RUN_SECONDS = 30.0

#: How often each worker republishes its counters for /stats merging.
STATS_PUBLISH_INTERVAL_SECONDS = 0.2

#: Listen backlog for the shared socket (one accept queue, N workers).
LISTEN_BACKLOG = 128

_SUPERVISOR_POLL_SECONDS = 0.05


def write_port_file(path: str, port: int) -> None:
    """Atomically record the bound port: readers see the old content or
    the complete new one, never a partial write (``repro serve
    --port-file``)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=".port-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def bind_listener(
    host: str, port: int, *, reuse_port: bool = False
) -> socket.socket:
    """Bind and listen.  ``reuse_port`` sets ``SO_REUSEPORT`` so several
    processes can bind the same port and share the accept load (the
    spawn-mode worker path); it raises on platforms without the option."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise ReproError(
                    "SO_REUSEPORT is not available on this platform; "
                    "spawn-mode multi-worker serving needs it"
                )
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(LISTEN_BACKLOG)
    except BaseException:
        sock.close()
        raise
    return sock


# ----------------------------------------------------------------------
# Cross-worker stats
# ----------------------------------------------------------------------


class WorkerStatsBoard:
    """One worker's seat at the shared stats directory.

    Each worker owns ``worker-<id>.json`` inside ``stats_dir`` and
    republishes its :meth:`SynthesisService.stats_local` payload there
    (atomic temp-file + ``os.replace``, so readers never see a torn
    write) — continuously from a background thread, plus once on
    shutdown.  :meth:`merged` reads every seat and folds the counters
    into one server-wide ``/stats`` payload.
    """

    def __init__(
        self,
        stats_dir: str,
        worker_id: int,
        *,
        parent_pid: Optional[int] = None,
        publish_interval: float = STATS_PUBLISH_INTERVAL_SECONDS,
    ):
        self.stats_dir = stats_dir
        self.worker_id = worker_id
        self.parent_pid = parent_pid
        self.publish_interval = publish_interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._supplier: Optional[Callable[[], Dict[str, Any]]] = None

    # -- publishing ----------------------------------------------------

    @property
    def path(self) -> str:
        return os.path.join(self.stats_dir, f"worker-{self.worker_id}.json")

    def publish(self, stats: Dict[str, Any]) -> None:
        payload = {
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "stats": stats,
        }
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".worker-{self.worker_id}-", suffix=".tmp",
            dir=self.stats_dir,
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def start(self, supplier: Callable[[], Dict[str, Any]]) -> None:
        """Republish ``supplier()`` every ``publish_interval`` seconds
        from a daemon thread until :meth:`stop`."""
        self._supplier = supplier

        def _loop() -> None:
            while not self._stop.wait(self.publish_interval):
                self._publish_quietly()

        self._publish_quietly()
        self._thread = threading.Thread(
            target=_loop, name="repro-stats-publisher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._publish_quietly()  # final counters survive shutdown

    def _publish_quietly(self) -> None:
        if self._supplier is None:
            return
        try:
            self.publish(self._supplier())
        except Exception:
            pass  # the stats dir may be gone during supervisor teardown

    # -- reload fan-out ------------------------------------------------

    def notify_siblings_reload(self) -> None:
        """Ask the supervisor to SIGHUP every worker (the
        ``/admin/reload`` fan-out).  No-op when the parent is gone."""
        if self.parent_pid is None or not hasattr(signal, "SIGHUP"):
            return
        if os.getppid() != self.parent_pid:
            return  # supervisor died; we are orphaned
        try:
            os.kill(self.parent_pid, signal.SIGHUP)
        except OSError:
            pass

    # -- merging -------------------------------------------------------

    def read_all(self) -> List[Dict[str, Any]]:
        entries: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(self.stats_dir))
        except OSError:
            return entries
        for name in names:
            if not (name.startswith("worker-") and name.endswith(".json")):
                continue
            try:
                with open(
                    os.path.join(self.stats_dir, name), encoding="utf-8"
                ) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue  # a seat mid-replace or mid-crash; skip it
            if isinstance(entry, dict) and isinstance(
                entry.get("stats"), dict
            ):
                entries.append(entry)
        return entries

    def merged(self, local: Dict[str, Any]) -> Dict[str, Any]:
        """The server-wide ``/stats`` payload: publish this worker's
        fresh ``local`` stats, read every seat, and fold the counters."""
        try:
            self.publish(local)
        except Exception:
            pass
        entries = self.read_all()
        if not entries:
            entries = [
                {"worker_id": self.worker_id, "pid": os.getpid(),
                 "stats": local}
            ]
        return merge_worker_stats(entries, self.worker_id, local)


def _sum_counters(
    into: Dict[str, Any], add: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Recursively sum the numeric leaves of ``add`` into ``into``
    (missing keys are adopted).  Booleans and strings are kept from the
    first dict seen — only real counters accumulate."""
    if not isinstance(add, dict):
        return into
    for key, value in add.items():
        if isinstance(value, dict):
            into[key] = _sum_counters(
                into.get(key) if isinstance(into.get(key), dict) else {},
                value,
            )
        elif isinstance(value, bool):
            into.setdefault(key, value)
        elif isinstance(value, (int, float)):
            base = into.get(key, 0)
            into[key] = (base if isinstance(base, (int, float)) else 0) + value
        else:
            into.setdefault(key, value)
    return into


def merge_worker_stats(
    entries: List[Dict[str, Any]],
    responder_id: int,
    local: Dict[str, Any],
) -> Dict[str, Any]:
    """Fold per-worker ``stats_local`` payloads into one ``/stats``
    response.

    Counters (``requests``, ``verification``, ``reloads``, the
    scheduler counters/occupancy, per-domain cache counters and entry
    counts) are summed across workers.  Distribution-shaped and
    configuration-shaped fields that do not sum — ``stages``
    percentiles, scheduler capacities/budgets, cache capacities —
    come from the responding worker and describe one worker each; the
    per-worker breakdown lives under ``workers``.
    """
    requests: Dict[str, Any] = {}
    verification: Dict[str, Any] = {}
    scheduler_counters: Dict[str, Any] = {}
    priorities: Dict[str, Any] = {}
    domains: Dict[str, Any] = {}
    reloads = 0
    inflight = 0
    queue_depth = 0
    uptime = 0.0
    workers: Dict[str, Any] = {}
    for entry in entries:
        stats = entry["stats"]
        scheduler = stats.get("scheduler") or {}
        _sum_counters(requests, stats.get("requests"))
        _sum_counters(verification, stats.get("verification"))
        _sum_counters(scheduler_counters, scheduler.get("counters"))
        _sum_counters(priorities, scheduler.get("priorities"))
        for name, domain_stats in (stats.get("domains") or {}).items():
            if not isinstance(domain_stats, dict):
                continue
            slot = domains.setdefault(
                name,
                {"counters": {}, "entries": {},
                 "capacities": domain_stats.get("capacities", {})},
            )
            _sum_counters(slot["counters"], domain_stats.get("counters"))
            _sum_counters(slot["entries"], domain_stats.get("entries"))
        reloads += int(stats.get("reloads") or 0)
        inflight += int(scheduler.get("inflight") or 0)
        queue_depth += int(scheduler.get("queue_depth") or 0)
        uptime = max(uptime, float(stats.get("uptime_seconds") or 0.0))
        workers[str(entry["worker_id"])] = {
            "pid": entry.get("pid"),
            "uptime_seconds": stats.get("uptime_seconds"),
            "requests": stats.get("requests"),
            "reloads": stats.get("reloads"),
            "inflight": scheduler.get("inflight"),
            "stages": stats.get("stages"),
        }
    local_scheduler = dict(local.get("scheduler") or {})
    local_scheduler["counters"] = scheduler_counters
    local_scheduler["priorities"] = priorities
    local_scheduler["inflight"] = inflight
    local_scheduler["queue_depth"] = queue_depth
    return {
        "uptime_seconds": uptime,
        "worker_id": responder_id,
        "n_workers": len(entries),
        "requests": requests,
        "scheduler": local_scheduler,
        "stages": local.get("stages"),
        "verification": verification,
        "reloads": reloads,
        "domains": domains,
        "workers": workers,
    }


# ----------------------------------------------------------------------
# Worker bodies
# ----------------------------------------------------------------------


def _worker_serve(
    service: SynthesisService,
    sock: socket.socket,
    slot: int,
    stats_dir: str,
    grace_seconds: float,
    parent_pid: int,
) -> int:
    """The body every worker runs: join the stats board, serve the
    shared socket until SIGTERM, drain, publish final counters.  Exit
    code 0 iff the drain finished inside the grace period."""
    board = WorkerStatsBoard(stats_dir, slot, parent_pid=parent_pid)
    service.attach_worker_board(board)
    board.start(service.stats_local)
    try:
        drained = run_http(
            service,
            sock=sock,
            grace_seconds=grace_seconds,
            install_signal_handlers=True,
        )
    finally:
        board.stop()
    return 0 if drained else 1


def _spawn_worker_main(
    config: ServerConfig,
    host: str,
    port: int,
    slot: int,
    stats_dir: str,
    grace_seconds: float,
    parent_pid: int,
) -> None:
    """Entry point for spawn-mode workers (fresh interpreter): bind an
    ``SO_REUSEPORT`` sibling listener and build the service here,
    memory-mapping the snapshot so the bytes are still shared across
    workers through the page cache."""
    os.environ.setdefault("REPRO_SNAPSHOT_MMAP", "1")
    sock = bind_listener(host, port, reuse_port=True)
    service = SynthesisService(config)
    sys.exit(
        _worker_serve(
            service, sock, slot, stats_dir, grace_seconds, parent_pid
        )
    )


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------


class _WorkerHandle:
    """One live (or just-exited) worker process, fork- or spawn-backed."""

    __slots__ = ("slot", "pid", "proc", "started_at", "exitcode")

    def __init__(self, slot: int, pid: int, proc: Optional[Any] = None):
        self.slot = slot
        self.pid = pid
        self.proc = proc  # multiprocessing.Process for spawn workers
        self.started_at = time.monotonic()
        self.exitcode: Optional[int] = None

    def poll(self) -> Optional[int]:
        """The worker's exit code, reaping it if needed; None while it
        is still running.  Stable once non-None."""
        if self.exitcode is not None:
            return self.exitcode
        if self.proc is not None:
            if self.proc.is_alive():
                return None
            self.proc.join(timeout=0)
            self.exitcode = self.proc.exitcode
            return self.exitcode
        try:
            pid, status = os.waitpid(self.pid, os.WNOHANG)
        except ChildProcessError:
            self.exitcode = 0  # reaped elsewhere; assume clean
            return self.exitcode
        if pid == 0:
            return None
        self.exitcode = os.waitstatus_to_exitcode(status)
        return self.exitcode

    def signal(self, signum: int) -> None:
        if self.exitcode is not None:
            return
        try:
            os.kill(self.pid, signum)
        except OSError:
            pass


def run_supervisor(
    config: ServerConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    grace_seconds: float = 30.0,
    port_file: Optional[str] = None,
    start_method: Optional[str] = None,
    on_ready: Optional[Callable[[int], None]] = None,
) -> bool:
    """Run the pre-fork server until SIGTERM/SIGINT; returns True when
    every worker drained cleanly inside the grace period.

    ``start_method`` is ``"fork"`` (inherited listener + load-before-fork
    snapshot sharing; the default where available), ``"spawn"``
    (``SO_REUSEPORT`` siblings + mmap'd snapshots), or None to pick from
    ``$REPRO_SERVE_START_METHOD`` / the platform.  ``on_ready(port)``
    fires once the port is bound and every initial worker is started.
    """
    if workers < 1:
        raise ReproError("workers must be >= 1")
    if start_method is None:
        start_method = os.environ.get("REPRO_SERVE_START_METHOD") or (
            "fork" if hasattr(os, "fork") else "spawn"
        )
    if start_method not in ("fork", "spawn"):
        raise ReproError(
            f"unknown start method {start_method!r}; use 'fork' or 'spawn'"
        )
    if start_method == "fork" and not hasattr(os, "fork"):
        raise ReproError("start method 'fork' is unavailable here")

    supervisor = _Supervisor(
        config,
        host=host,
        port=port,
        workers=workers,
        grace_seconds=grace_seconds,
        port_file=port_file,
        start_method=start_method,
        on_ready=on_ready,
    )
    return supervisor.run()


class _Supervisor:
    def __init__(
        self,
        config: ServerConfig,
        *,
        host: str,
        port: int,
        workers: int,
        grace_seconds: float,
        port_file: Optional[str],
        start_method: str,
        on_ready: Optional[Callable[[int], None]],
    ):
        self.config = config
        self.host = host
        self.port = port
        self.workers = workers
        self.grace_seconds = grace_seconds
        self.port_file = port_file
        self.start_method = start_method
        self.on_ready = on_ready

        self._listener: Optional[socket.socket] = None
        self._service: Optional[SynthesisService] = None
        self._stats_dir: Optional[str] = None
        self._bound_port: Optional[int] = None
        self._handles: Dict[int, Optional[_WorkerHandle]] = {}
        self._restart_at: Dict[int, float] = {}
        self._backoff: Dict[int, float] = {}
        self._stop_requested = False
        self._hup_requested = False

    # -- worker lifecycle ----------------------------------------------

    def _start_worker(self, slot: int) -> _WorkerHandle:
        if self.start_method == "fork":
            return self._fork_worker(slot)
        return self._spawn_worker(slot)

    def _fork_worker(self, slot: int) -> _WorkerHandle:
        assert self._service is not None and self._listener is not None
        pid = os.fork()
        if pid != 0:
            return _WorkerHandle(slot, pid)
        # ---- child ----
        code = 70  # EX_SOFTWARE unless the worker body says otherwise
        try:
            # The parent's supervisor handlers are registered in this
            # (copied) interpreter too; drop them before run_http
            # installs the worker's own drain/reload handlers.
            for signum in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP):
                signal.signal(signum, signal.SIG_DFL)
            code = _worker_serve(
                self._service,
                self._listener,
                slot,
                self._stats_dir or ".",
                self.grace_seconds,
                os.getppid(),
            )
        except BaseException:
            traceback.print_exc()
        finally:
            # Never run the parent's cleanup (atexit, finally blocks up
            # the stack) in the child.
            os._exit(code)

    def _spawn_worker(self, slot: int) -> _WorkerHandle:
        import multiprocessing

        assert self._stats_dir is not None and self._bound_port is not None
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(
            target=_spawn_worker_main,
            args=(
                self.config,
                self.host,
                self._bound_port,
                slot,
                self._stats_dir,
                self.grace_seconds,
                os.getpid(),
            ),
            name=f"repro-serve-worker-{slot}",
        )
        proc.start()
        return _WorkerHandle(slot, proc.pid or -1, proc)

    # -- main loop ------------------------------------------------------

    def run(self) -> bool:
        self._stats_dir = tempfile.mkdtemp(prefix="repro-serve-stats-")
        previous_handlers: Dict[int, Any] = {}
        try:
            listener = bind_listener(
                self.host,
                self.port,
                reuse_port=(self.start_method == "spawn"),
            )
            self._bound_port = listener.getsockname()[1]
            if self.start_method == "fork":
                # Load-before-fork: build the whole service (snapshots
                # included) once; the forked workers share these pages
                # copy-on-write and only ever read them.
                self._listener = listener
                self._service = SynthesisService(self.config)
            else:
                # Spawn workers bind their own SO_REUSEPORT listeners;
                # the parent's claim socket must not stay in the accept
                # rotation or its queue would swallow connections.
                listener.close()
            if self.port_file:
                write_port_file(self.port_file, self._bound_port)

            def _handle_stop(signum: int, frame: Any) -> None:
                self._stop_requested = True

            def _handle_hup(signum: int, frame: Any) -> None:
                self._hup_requested = True

            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers[signum] = signal.signal(
                    signum, _handle_stop
                )
            if hasattr(signal, "SIGHUP"):
                previous_handlers[signal.SIGHUP] = signal.signal(
                    signal.SIGHUP, _handle_hup
                )

            for slot in range(self.workers):
                self._backoff[slot] = RESTART_BACKOFF_BASE_SECONDS
                self._handles[slot] = self._start_worker(slot)
            if self.on_ready is not None:
                self.on_ready(self._bound_port)

            while not self._stop_requested:
                time.sleep(_SUPERVISOR_POLL_SECONDS)
                if self._hup_requested:
                    self._hup_requested = False
                    for handle in self._handles.values():
                        if handle is not None:
                            handle.signal(signal.SIGHUP)
                self._reap_and_restart()
            return self._shutdown()
        finally:
            for signum, handler in previous_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):
                    pass
            if self._listener is not None:
                self._listener.close()
            if self._stats_dir is not None:
                shutil.rmtree(self._stats_dir, ignore_errors=True)

    def _reap_and_restart(self) -> None:
        now = time.monotonic()
        for slot, handle in list(self._handles.items()):
            if handle is None:
                if now >= self._restart_at.get(slot, 0.0):
                    self._handles[slot] = self._start_worker(slot)
                continue
            code = handle.poll()
            if code is None:
                if (
                    now - handle.started_at >= HEALTHY_RUN_SECONDS
                    and self._backoff[slot] != RESTART_BACKOFF_BASE_SECONDS
                ):
                    self._backoff[slot] = RESTART_BACKOFF_BASE_SECONDS
                continue
            backoff = self._backoff[slot]
            print(
                f"# worker {slot} (pid {handle.pid}) exited with code "
                f"{code}; restarting in {backoff:.1f}s",
                file=sys.stderr,
            )
            self._handles[slot] = None
            self._restart_at[slot] = now + backoff
            self._backoff[slot] = min(
                backoff * 2, RESTART_BACKOFF_MAX_SECONDS
            )

    def _shutdown(self) -> bool:
        live = [h for h in self._handles.values() if h is not None]
        for handle in live:
            handle.signal(signal.SIGTERM)
        # Workers bound-drain themselves; give them the grace period
        # plus a margin for teardown.
        deadline = time.monotonic() + self.grace_seconds + 10.0
        all_clean = True
        for handle in live:
            code = handle.poll()
            while code is None and time.monotonic() < deadline:
                time.sleep(_SUPERVISOR_POLL_SECONDS)
                code = handle.poll()
            if code is None:
                handle.signal(signal.SIGKILL)
                kill_deadline = time.monotonic() + 5.0
                while (
                    handle.poll() is None
                    and time.monotonic() < kill_deadline
                ):
                    time.sleep(_SUPERVISOR_POLL_SECONDS)
                all_clean = False
            elif code != 0:
                all_clean = False
        return all_clean
