"""The resident synthesis service behind both serving front ends.

:class:`SynthesisService` is the transport-independent core of ``repro
serve``: it keeps one warm :class:`~repro.synthesis.domain.Domain` per
configured domain resident for the life of the process (cache snapshots
preloaded at startup), routes each request to the right domain through the
:mod:`repro.domains` registry, and wraps dispatch with the serving
concerns a long-running deployment needs:

* **admission control** — at most ``max_inflight`` requests are executing
  at once; excess requests are rejected immediately with ``overloaded``
  (HTTP 429) instead of queueing without bound;
* **deadline propagation** — the per-request ``timeout`` (clamped to
  ``max_timeout``, defaulting to ``default_timeout``) flows into the
  engines' existing cooperative :class:`~repro.synthesis.deadline.Deadline`,
  so a served request times out exactly like a CLI run;
* **structured errors** — every failure maps to a stable wire code
  (:data:`repro.errors.ERROR_CODES` + the serving codes in
  :mod:`repro.server.protocol`);
* **graceful lifecycle** — :meth:`begin_shutdown` flips the service to
  draining (new work rejected with ``shutting_down``), :meth:`drain`
  waits for in-flight requests to finish, :meth:`close` releases worker
  pools.  The front ends wire SIGINT/SIGTERM to exactly this sequence.

Execution backends mirror :meth:`Synthesizer.synthesize_many`:

* ``backend="thread"`` (default) — requests run on the transport's
  threads against the shared warm cache.  The PathCache is lock-guarded,
  so this is safe; per-query cache deltas are not recorded (they would
  race across concurrent requests — ``stats.cache_delta_scope`` reads
  ``"batch"``), use ``/stats`` for service-level counters.
* ``backend="process"`` — requests are dispatched to a persistent
  ``ProcessPoolExecutor`` per (domain, engine), reusing the batch
  backend's worker plumbing (``_process_worker_init`` preloads the same
  cache snapshots).  This is the CPU-scaling path for heavy traffic.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.domains import load_domains
from repro.errors import DomainError, ReproError
from repro.synthesis.domain import Domain
from repro.synthesis.pipeline import (
    BatchItem,
    Synthesizer,
    _pool_context,
    _process_worker_init,
    _process_worker_run,
    _run_single,
)
from repro.server.protocol import (
    BadRequest,
    SynthesisRequest,
    error_response,
    ok_response,
    parse_request,
)


@dataclass(frozen=True)
class ServerConfig:
    """Startup configuration for a :class:`SynthesisService`."""

    #: Domain names to keep resident (() = every registered domain).
    domains: Tuple[str, ...] = ()
    #: Default domain when a request names none (must be in ``domains``;
    #: None = the first configured name).
    default_domain: Optional[str] = None
    #: Default synthesis engine ("dggt" / "hisyn").
    engine: str = "dggt"
    #: Snapshot directory preloaded at startup (None: the library default,
    #: ``$REPRO_CACHE_DIR`` / ``~/.cache/repro-dggt``).
    cache_dir: Optional[str] = None
    #: "thread" (shared warm cache) or "process" (persistent pool).
    backend: str = "thread"
    #: Process-pool size per (domain, engine) — process backend only.
    workers: int = 2
    #: Admission-control bound on concurrently executing requests.
    max_inflight: int = 8
    #: Per-request budget when the request carries none (seconds).
    default_timeout: float = 20.0
    #: Hard ceiling a request's own ``timeout`` is clamped to.
    max_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.backend not in ("thread", "process"):
            raise ReproError(
                f"unknown backend {self.backend!r}; use 'thread' or 'process'"
            )
        if self.engine not in ("dggt", "hisyn"):
            raise ReproError(
                f"unknown engine {self.engine!r}; use 'dggt' or 'hisyn'"
            )
        if self.max_inflight < 1:
            raise ReproError("max_inflight must be >= 1")
        if self.workers < 1:
            raise ReproError("workers must be >= 1")
        if self.default_timeout < 0 or self.max_timeout <= 0:
            raise ReproError("timeouts must be non-negative")


@dataclass
class _DomainState:
    """Per-domain serving state."""

    domain: Domain
    snapshot_loaded: bool
    snapshot_file: str
    requests: int = 0
    synthesizers: Dict[str, Synthesizer] = field(default_factory=dict)


class SynthesisService:
    """Multi-domain synthesis routing with admission control and a
    graceful lifecycle (see module docstring).

    The service is transport-independent: both front ends call
    :meth:`handle_payload` (decoded JSON in, ``(http_status, payload)``
    out) and the health/stats accessors; nothing here knows about sockets
    or pipes.
    """

    def __init__(self, config: Optional[ServerConfig] = None, **kwargs: Any):
        if config is None:
            config = ServerConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a ServerConfig or keyword fields")
        self.config = config
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._draining = False
        self._closed = False
        self._counters: Dict[str, int] = {
            "total": 0, "ok": 0, "timeout": 0, "error": 0, "rejected": 0,
        }
        self._pools: Dict[Tuple[str, str], ProcessPoolExecutor] = {}

        domains = load_domains(config.domains or None)
        if not domains:
            raise DomainError("no domains to serve")
        self._domains: Dict[str, _DomainState] = {}
        for name, domain in domains.items():
            loaded = domain.load_cache(config.cache_dir)
            state = _DomainState(
                domain=domain,
                snapshot_loaded=loaded,
                snapshot_file=str(domain.cache_file(config.cache_dir)),
            )
            state.synthesizers[config.engine] = Synthesizer(
                domain, engine=config.engine
            )
            self._domains[name] = state
        default = (
            config.default_domain
            if config.default_domain is not None
            else next(iter(self._domains))
        )
        if default.lower() not in self._domains:
            raise DomainError(
                f"default domain {default!r} is not among the served "
                f"domains {sorted(self._domains)}"
            )
        self.default_domain = default.lower()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def handle_payload(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """Validate + dispatch one decoded request body.  Never raises:
        every failure becomes a structured error payload."""
        req_id = payload.get("id") if isinstance(payload, dict) else None
        try:
            request = parse_request(payload)
        except BadRequest as exc:
            self._count("rejected")
            return error_response("bad_request", str(exc), id=req_id)
        return self.synthesize(request)

    def synthesize(
        self, request: SynthesisRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """Route one validated request; returns (http_status, payload)."""
        name = (request.domain or self.default_domain).lower()
        state = self._domains.get(name)
        if state is None:
            self._count("rejected")
            return error_response(
                "unknown_domain",
                f"domain {name!r} is not served here; "
                f"available: {sorted(self._domains)}",
                id=request.id,
            )
        timeout = self._resolve_timeout(request.timeout)

        with self._lock:
            if self._draining or self._closed:
                self._counters["total"] += 1
                self._counters["rejected"] += 1
                return error_response(
                    "shutting_down",
                    "service is draining; retry against another replica",
                    id=request.id,
                )
            if self._inflight >= self.config.max_inflight:
                self._counters["total"] += 1
                self._counters["rejected"] += 1
                return error_response(
                    "overloaded",
                    f"at capacity ({self.config.max_inflight} in flight); "
                    "retry with backoff",
                    id=request.id,
                )
            self._inflight += 1
            state.requests += 1

        try:
            item = self._dispatch(state, request, timeout)
            status, payload = ok_response(item, request)
        except BaseException as exc:  # the service must stay up
            self._count("error")
            return error_response(
                "internal", f"{type(exc).__name__}: {exc}", id=request.id
            )
        finally:
            with self._lock:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()
        self._count(payload.get("status", "error"))
        return status, payload

    def _resolve_timeout(self, requested: Optional[float]) -> float:
        if requested is None:
            return self.config.default_timeout
        return min(requested, self.config.max_timeout)

    def _dispatch(
        self,
        state: _DomainState,
        request: SynthesisRequest,
        timeout: float,
    ) -> BatchItem:
        engine = request.engine or self.config.engine
        if self.config.backend == "process":
            pool = self._pool(state.domain.name, engine)
            future = pool.submit(_process_worker_run, 0, request.query, timeout)
            # The worker enforces the deadline cooperatively; the grace
            # period only guards against a wedged worker process.
            return future.result(timeout=timeout + 30.0)
        synth = self._synthesizer(state, engine)
        # Per-query cache deltas race across concurrent server requests
        # (shared counters), so they are not recorded: scope is "batch".
        return _run_single(
            synth, 0, request.query, timeout, record_cache_delta=False
        )

    def _synthesizer(self, state: _DomainState, engine: str) -> Synthesizer:
        with self._lock:
            synth = state.synthesizers.get(engine)
            if synth is None:
                synth = Synthesizer(state.domain, engine=engine)
                state.synthesizers[engine] = synth
            return synth

    def _pool(self, domain_name: str, engine: str) -> ProcessPoolExecutor:
        key = (domain_name, engine)
        with self._lock:
            pool = self._pools.get(key)
            if pool is None:
                spec = Synthesizer(
                    self._domains[domain_name].domain, engine=engine
                )._worker_spec(self.config.cache_dir)
                pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    mp_context=_pool_context(),
                    initializer=_process_worker_init,
                    initargs=(spec,),
                )
                self._pools[key] = pool
            return pool

    def _count(self, status: str) -> None:
        with self._lock:
            self._counters["total"] += 1
            if status in self._counters:
                self._counters[status] += 1

    # ------------------------------------------------------------------
    # Introspection (the /healthz and /stats payloads)
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def health(self) -> Dict[str, Any]:
        """Readiness payload: lifecycle state plus, per domain, the
        snapshot provenance and current cache occupancy."""
        with self._lock:
            status = "draining" if (self._draining or self._closed) else "ok"
            inflight = self._inflight
            counters = dict(self._counters)
        domains: Dict[str, Any] = {}
        for name, state in self._domains.items():
            cache = state.domain.path_cache
            domains[name] = {
                "apis": len(state.domain.document),
                "grammar_hash": state.domain.grammar_hash(),
                "snapshot_loaded": state.snapshot_loaded,
                "snapshot_file": state.snapshot_file,
                "requests": state.requests,
                "cache_entries": {
                    layer: len(cache.layer(layer))
                    for layer in (*cache.PERSISTED_LAYERS, "outcomes")
                },
            }
        return {
            "status": status,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "backend": self.config.backend,
            "engine": self.config.engine,
            "default_domain": self.default_domain,
            "max_inflight": self.config.max_inflight,
            "inflight": inflight,
            "requests": counters,
            "domains": domains,
        }

    def stats(self) -> Dict[str, Any]:
        """Service-level cache counters: per domain, the cumulative
        PathCache layer hits/misses/evictions plus configured capacities
        (the same counters ``SynthesisStats`` reports per query)."""
        with self._lock:
            counters = dict(self._counters)
        domains: Dict[str, Any] = {}
        for name, state in self._domains.items():
            cache = state.domain.path_cache
            domains[name] = {
                "counters": cache.snapshot(),
                "capacities": dict(cache.capacities),
                "entries": {
                    layer: len(cache.layer(layer))
                    for layer in (*cache.PERSISTED_LAYERS, "outcomes")
                },
            }
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": counters,
            "domains": domains,
        }

    def domain_names(self) -> Sequence[str]:
        return sorted(self._domains)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_shutdown(self) -> None:
        """Stop admitting new requests; in-flight work keeps running."""
        with self._lock:
            self._draining = True

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Wait for in-flight requests to finish (after
        :meth:`begin_shutdown`).  Returns True when the service is idle,
        False when ``grace_seconds`` elapsed with work still running."""
        deadline = (
            None if grace_seconds is None
            else time.monotonic() + grace_seconds
        )
        with self._idle:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
            return True

    def close(self) -> None:
        """Release worker pools.  Idempotent; implies
        :meth:`begin_shutdown`."""
        with self._lock:
            if self._closed:
                return
            self._draining = True
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "SynthesisService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.begin_shutdown()
        self.drain(grace_seconds=30.0)
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SynthesisService(domains={sorted(self._domains)}, "
            f"backend={self.config.backend!r}, "
            f"inflight={self.inflight}/{self.config.max_inflight})"
        )
