"""The resident synthesis service behind both serving front ends.

:class:`SynthesisService` is the transport-independent core of ``repro
serve``: it keeps one warm :class:`~repro.synthesis.domain.Domain` per
configured domain resident for the life of the process (cache snapshots
preloaded at startup), routes each request to the right domain through the
:mod:`repro.domains` registry, and wraps dispatch with the serving
concerns a long-running deployment needs:

* **admission scheduling** — every request passes through a
  :class:`~repro.server.scheduler.RequestScheduler`: at most
  ``max_inflight`` requests execute at once, excess requests wait in a
  bounded queue (``queue_depth``; 0 = shed immediately, the
  pre-scheduler behaviour) up to their own deadline, per-domain
  concurrency budgets keep one hot domain from starving the rest, and
  requests shed at a full queue carry a ``retry_after_ms`` hint;
* **hot snapshot reload** — :meth:`reload_snapshots` (wired to SIGHUP
  and ``POST /admin/reload`` by the front ends) atomically swaps freshly
  loaded PathCache snapshots — and restarts process-pool workers —
  without dropping in-flight or queued work;
* **deadline propagation** — the per-request ``timeout`` (clamped to
  ``max_timeout``, defaulting to ``default_timeout``) flows into the
  engines' existing cooperative :class:`~repro.synthesis.deadline.Deadline`,
  so a served request times out exactly like a CLI run;
* **structured errors** — every failure maps to a stable wire code
  (:data:`repro.errors.ERROR_CODES` + the serving codes in
  :mod:`repro.server.protocol`);
* **per-stage observability** — every dispatched request runs the staged
  pipeline (:mod:`repro.synthesis.stages`) with tracing on; the spans
  feed the ``stages`` p50/p99 section of ``GET /stats`` and, on
  ``include_trace`` requests, ride the response payload;
* **graceful lifecycle** — :meth:`begin_shutdown` flips the service to
  draining (new work rejected with ``shutting_down``), :meth:`drain`
  waits for in-flight requests to finish, :meth:`close` releases worker
  pools.  The front ends wire SIGINT/SIGTERM to exactly this sequence.

Execution backends mirror :meth:`Synthesizer.synthesize_many`:

* ``backend="thread"`` (default) — requests run on the transport's
  threads against the shared warm cache.  The PathCache is lock-guarded,
  so this is safe; per-query cache deltas are not recorded (they would
  race across concurrent requests — ``stats.cache_delta_scope`` reads
  ``"batch"``), use ``/stats`` for service-level counters.
* ``backend="process"`` — requests are dispatched to a persistent
  ``ProcessPoolExecutor`` per (domain, engine), reusing the batch
  backend's worker plumbing (``_process_worker_init`` preloads the same
  cache snapshots).  This is the CPU-scaling path for heavy traffic.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.domains import load_domains
from repro.errors import (
    DeadlineExceeded,
    DomainError,
    InvalidExamplesError,
    PackError,
    ReproError,
    error_code,
)
from repro.packs.loader import refresh_domain
from repro.server.scheduler import (
    QueueFull,
    RequestScheduler,
    SchedulerDraining,
)
from repro.synthesis.domain import Domain
from repro.synthesis.pipeline import (
    BatchItem,
    Synthesizer,
    _pool_context,
    _process_worker_init,
    _process_worker_run,
    _run_single,
)
from repro.synthesis.stages import StageLatencyAggregator
from repro.server.protocol import (
    BadRequest,
    SynthesisRequest,
    error_response,
    ok_response,
    parse_request,
)


@dataclass(frozen=True)
class ServerConfig:
    """Startup configuration for a :class:`SynthesisService`."""

    #: Domain names to keep resident (() = every registered domain).
    domains: Tuple[str, ...] = ()
    #: Default domain when a request names none (must be in ``domains``;
    #: None = the first configured name).
    default_domain: Optional[str] = None
    #: Default synthesis engine ("dggt" / "hisyn").
    engine: str = "dggt"
    #: Snapshot directory preloaded at startup (None: the library default,
    #: ``$REPRO_CACHE_DIR`` / ``~/.cache/repro-dggt``).
    cache_dir: Optional[str] = None
    #: "thread" (shared warm cache) or "process" (persistent pool).
    backend: str = "thread"
    #: Process-pool size per (domain, engine) — process backend only.
    workers: int = 2
    #: Admission-control bound on concurrently executing requests.
    max_inflight: int = 8
    #: Bounded-queue capacity for requests waiting on a slot.  0 (the
    #: default) disables queueing: at capacity, shed immediately with
    #: ``overloaded`` — exactly the pre-scheduler semantics.
    queue_depth: int = 0
    #: Adaptive admission tuning: the scheduler resizes its effective
    #: queue from the live EWMA service time (against
    #: ``default_timeout``) and makes implicit domain budgets
    #: work-conserving.  Requires ``queue_depth >= 1``.
    adaptive_queue: bool = False
    #: Per-domain concurrency budgets as (name, slots) pairs (a dict is
    #: accepted and normalized).  Domains not listed get a fair share of
    #: ``max_inflight`` when queueing is enabled, or ``max_inflight``
    #: (no extra constraint) in the legacy ``queue_depth=0`` mode.
    domain_budgets: Tuple[Tuple[str, int], ...] = ()
    #: Per-request budget when the request carries none (seconds).
    default_timeout: float = 20.0
    #: Hard ceiling a request's own ``timeout`` is clamped to.
    max_timeout: float = 120.0

    def __post_init__(self) -> None:
        if isinstance(self.domain_budgets, dict):
            object.__setattr__(
                self,
                "domain_budgets",
                tuple(sorted(self.domain_budgets.items())),
            )
        if self.backend not in ("thread", "process"):
            raise ReproError(
                f"unknown backend {self.backend!r}; use 'thread' or 'process'"
            )
        if self.engine not in ("dggt", "hisyn"):
            raise ReproError(
                f"unknown engine {self.engine!r}; use 'dggt' or 'hisyn'"
            )
        if self.max_inflight < 1:
            raise ReproError("max_inflight must be >= 1")
        if self.queue_depth < 0:
            raise ReproError("queue_depth must be >= 0")
        if self.adaptive_queue and self.queue_depth < 1:
            raise ReproError("adaptive_queue requires queue_depth >= 1")
        for name, slots in self.domain_budgets:
            if not isinstance(slots, int) or isinstance(slots, bool) \
                    or slots < 1:
                raise ReproError(
                    f"domain budget for {name!r} must be a positive "
                    f"integer, got {slots!r}"
                )
        if self.workers < 1:
            raise ReproError("workers must be >= 1")
        if self.default_timeout < 0 or self.max_timeout <= 0:
            raise ReproError("timeouts must be non-negative")


@dataclass
class _DomainState:
    """Per-domain serving state."""

    domain: Domain
    snapshot_loaded: bool
    snapshot_file: str
    requests: int = 0
    synthesizers: Dict[str, Synthesizer] = field(default_factory=dict)


class SynthesisService:
    """Multi-domain synthesis routing with admission control and a
    graceful lifecycle (see module docstring).

    The service is transport-independent: both front ends call
    :meth:`handle_payload` (decoded JSON in, ``(http_status, payload)``
    out) and the health/stats accessors; nothing here knows about sockets
    or pipes.
    """

    def __init__(self, config: Optional[ServerConfig] = None, **kwargs: Any):
        if config is None:
            config = ServerConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a ServerConfig or keyword fields")
        self.config = config
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._reloads = 0
        #: Snapshot directory requests are served from; starts at the
        #: configured dir and follows :meth:`reload_snapshots`.
        self._cache_dir = config.cache_dir
        self._counters: Dict[str, int] = {
            "total": 0, "ok": 0, "timeout": 0, "error": 0, "rejected": 0,
            "expired": 0,
        }
        # Execution-guided verification observability (GET /stats):
        # requests that carried examples, how many completed verification,
        # how many promoted a lower-ranked candidate, and how many fell
        # back to unverified ranking on deadline exhaustion.
        self._verify_counters: Dict[str, int] = {
            "requests_with_examples": 0, "verified": 0, "reranked": 0,
            "exhausted": 0,
        }
        self._pools: Dict[Tuple[str, str], ProcessPoolExecutor] = {}
        # Every dispatched request runs with tracing on (the per-stage
        # overhead is two clock reads and a counter snapshot per stage);
        # the trace feeds the per-stage p50/p99 section of GET /stats and
        # is returned to the client only on include_trace requests.
        self._stage_latency = StageLatencyAggregator()

        domains = load_domains(config.domains or None)
        if not domains:
            raise DomainError("no domains to serve")
        self._domains: Dict[str, _DomainState] = {}
        for name, domain in domains.items():
            loaded = domain.load_cache(config.cache_dir)
            state = _DomainState(
                domain=domain,
                snapshot_loaded=loaded,
                snapshot_file=str(domain.cache_file(config.cache_dir)),
            )
            state.synthesizers[config.engine] = Synthesizer(
                domain, engine=config.engine
            )
            self._domains[name] = state
        default = (
            config.default_domain
            if config.default_domain is not None
            else next(iter(self._domains))
        )
        if default.lower() not in self._domains:
            raise DomainError(
                f"default domain {default!r} is not among the served "
                f"domains {sorted(self._domains)}"
            )
        self.default_domain = default.lower()
        self._scheduler = RequestScheduler(
            max_inflight=config.max_inflight,
            queue_depth=config.queue_depth,
            domains=tuple(sorted(self._domains)),
            domain_budgets={
                name.lower(): slots for name, slots in config.domain_budgets
            },
            adaptive=config.adaptive_queue,
            target_deadline_seconds=config.default_timeout,
        )
        # Multi-worker serving: set via attach_worker_board() by the
        # worker entry point.  When attached, /stats aggregates every
        # worker's counters and /healthz identifies the worker.
        self._worker_board: Optional[Any] = None
        # Test/benchmark knob: an artificial floor on per-request service
        # time, so load tests measure serving capacity independent of
        # engine speed and host CPU count.
        raw_delay = os.environ.get("REPRO_SERVE_INJECT_DELAY_MS", "")
        self._inject_delay_seconds = (
            float(raw_delay) / 1000.0 if raw_delay else 0.0
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def handle_payload(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """Validate + dispatch one decoded request body.  Never raises:
        every failure becomes a structured error payload."""
        req_id = payload.get("id") if isinstance(payload, dict) else None
        try:
            request = parse_request(payload)
        except BadRequest as exc:
            self._count("rejected")
            return error_response("bad_request", str(exc), id=req_id)
        except InvalidExamplesError as exc:
            self._count("rejected")
            return error_response("invalid_examples", str(exc), id=req_id)
        return self.synthesize(request)

    def synthesize(
        self, request: SynthesisRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """Route one validated request; returns (http_status, payload)."""
        name = (request.domain or self.default_domain).lower()
        state = self._domains.get(name)
        if state is None:
            self._count("rejected")
            return error_response(
                "unknown_domain",
                f"domain {name!r} is not served here; "
                f"available: {sorted(self._domains)}",
                id=request.id,
            )
        timeout = self._resolve_timeout(request.timeout)

        # Admission: the scheduler either grants a slot (immediately, or
        # after a bounded deadline-aware wait), or rejects with a stable
        # structured code — an expired or shed request never dispatches.
        try:
            grant = self._scheduler.acquire(name, timeout, request.priority)
        except SchedulerDraining as exc:
            self._count("rejected")
            return error_response("shutting_down", str(exc), id=request.id)
        except QueueFull as exc:
            self._count("rejected")
            return error_response(
                "overloaded",
                str(exc),
                id=request.id,
                retry_after_ms=(
                    exc.retry_after_ms
                    if self._scheduler.queueing_enabled else None
                ),
            )
        except DeadlineExceeded as exc:
            self._count("expired")
            return error_response(
                "deadline_exceeded",
                str(exc),
                id=request.id,
                queue_wait_ms=round(exc.waited_seconds * 1000.0, 3),
            )

        with self._lock:
            state.requests += 1
        # The deadline covers queueing + synthesis: hand the engines
        # whatever budget the queue wait left over.
        budget = max(0.0, timeout - grant.queue_wait_seconds)
        dispatch_started = time.monotonic()
        try:
            item = self._dispatch(state, request, budget)
            self._stage_latency.observe(getattr(item, "trace", None))
            if request.examples is not None:
                self._count_verification(item)
            if self._scheduler.queueing_enabled and item.outcome is not None:
                item.outcome.queue_wait_ms = round(
                    grant.queue_wait_seconds * 1000.0, 3
                )
            status, payload = ok_response(item, request)
            if self._scheduler.queueing_enabled and item.outcome is None:
                payload["queue_wait_ms"] = round(
                    grant.queue_wait_seconds * 1000.0, 3
                )
        except ReproError as exc:
            # Failures with a stable wire code that escape dispatch (e.g.
            # an unknown engine name from make_engine → invalid_request)
            # are client errors, not 500s.
            self._count("error")
            return error_response(error_code(exc), str(exc), id=request.id)
        except BaseException as exc:  # the service must stay up
            self._count("error")
            return error_response(
                "internal", f"{type(exc).__name__}: {exc}", id=request.id
            )
        finally:
            self._scheduler.release(
                name, service_seconds=time.monotonic() - dispatch_started
            )
        self._count(payload.get("status", "error"))
        return status, payload

    def _resolve_timeout(self, requested: Optional[float]) -> float:
        if requested is None:
            return self.config.default_timeout
        return min(requested, self.config.max_timeout)

    def _dispatch(
        self,
        state: _DomainState,
        request: SynthesisRequest,
        timeout: float,
    ) -> BatchItem:
        engine = request.engine or self.config.engine
        if self._inject_delay_seconds > 0:
            time.sleep(self._inject_delay_seconds)
        if self.config.backend == "process":
            # Look up the pool and submit under one lock so a concurrent
            # hot reload (which swaps pools) can never shut a pool down
            # between the lookup and the submit.
            with self._lock:
                pool = self._pool_locked(state.domain.name, engine)
                future = pool.submit(
                    _process_worker_run, 0, request.query, timeout, True,
                    request.examples,
                )
            # The worker enforces the deadline cooperatively; the grace
            # period only guards against a wedged worker process.
            return future.result(timeout=timeout + 30.0)
        synth = self._synthesizer(state, engine)
        # Per-query cache deltas race across concurrent server requests
        # (shared counters), so they are not recorded: scope is "batch".
        # Tracing is always on: the spans feed /stats (and the response,
        # when the request asked for them).
        return _run_single(
            synth, 0, request.query, timeout, record_cache_delta=False,
            collect_trace=True, examples=request.examples,
        )

    def _count_verification(self, item: BatchItem) -> None:
        """Fold one examples-carrying request into the verification
        counters (``/stats``)."""
        report = getattr(
            getattr(item, "outcome", None), "verification", None
        )
        with self._lock:
            self._verify_counters["requests_with_examples"] += 1
            if report is None:
                return
            if report.status == "verified":
                self._verify_counters["verified"] += 1
            if report.status == "deadline_exhausted":
                self._verify_counters["exhausted"] += 1
            if report.reranked:
                self._verify_counters["reranked"] += 1

    def _synthesizer(self, state: _DomainState, engine: str) -> Synthesizer:
        with self._lock:
            synth = state.synthesizers.get(engine)
            if synth is None:
                synth = Synthesizer(state.domain, engine=engine)
                state.synthesizers[engine] = synth
            return synth

    def _pool(self, domain_name: str, engine: str) -> ProcessPoolExecutor:
        with self._lock:
            return self._pool_locked(domain_name, engine)

    def _pool_locked(
        self, domain_name: str, engine: str
    ) -> ProcessPoolExecutor:
        """Get-or-create a worker pool; caller holds ``self._lock``."""
        key = (domain_name, engine)
        pool = self._pools.get(key)
        if pool is None:
            spec = Synthesizer(
                self._domains[domain_name].domain, engine=engine
            )._worker_spec(self._cache_dir)
            pool = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=_pool_context(),
                initializer=_process_worker_init,
                initargs=(spec,),
            )
            self._pools[key] = pool
        return pool

    def _count(self, status: str) -> None:
        with self._lock:
            self._counters["total"] += 1
            if status in self._counters:
                self._counters[status] += 1

    # ------------------------------------------------------------------
    # Introspection (the /healthz and /stats payloads)
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._scheduler.inflight_total

    @property
    def queued(self) -> int:
        return self._scheduler.queued

    @property
    def scheduler(self) -> RequestScheduler:
        return self._scheduler

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def attach_worker_board(self, board: Any) -> None:
        """Join a multi-worker stats board (see
        :mod:`repro.server.multiproc`).  Once attached, :meth:`stats`
        returns the cross-worker aggregate and :meth:`health` identifies
        this worker; a board-less service (the single-worker mode) is
        byte-identical to the pre-multiproc payloads."""
        self._worker_board = board

    @property
    def worker_board(self) -> Optional[Any]:
        return self._worker_board

    def health(self) -> Dict[str, Any]:
        """Readiness payload: lifecycle state plus, per domain, the
        snapshot provenance and current cache occupancy."""
        with self._lock:
            status = "draining" if (self._draining or self._closed) else "ok"
            counters = dict(self._counters)
            reloads = self._reloads
        scheduler = self._scheduler.snapshot()
        domains: Dict[str, Any] = {}
        for name, state in self._domains.items():
            cache = state.domain.path_cache
            domains[name] = {
                "apis": len(state.domain.document),
                "grammar_hash": state.domain.grammar_hash(),
                "snapshot_loaded": state.snapshot_loaded,
                "snapshot_file": state.snapshot_file,
                "requests": state.requests,
                "cache_entries": {
                    layer: len(cache.layer(layer))
                    for layer in (*cache.PERSISTED_LAYERS, "outcomes")
                },
            }
        payload = {
            "status": status,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "backend": self.config.backend,
            "engine": self.config.engine,
            "default_domain": self.default_domain,
            "max_inflight": self.config.max_inflight,
            "inflight": scheduler["inflight"],
            "requests": counters,
            "scheduler": scheduler,
            "reloads": reloads,
            "domains": domains,
        }
        if self._worker_board is not None:
            payload["worker"] = {
                "id": self._worker_board.worker_id,
                "pid": os.getpid(),
            }
        return payload

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload.  Single-worker: this worker's
        counters (:meth:`stats_local`), byte-identical to the
        pre-multiproc schema.  With a worker board attached: the
        cross-worker aggregate (summed request/scheduler/verification
        counters plus a per-worker breakdown)."""
        local = self.stats_local()
        if self._worker_board is None:
            return local
        return self._worker_board.merged(local)

    def stats_local(self) -> Dict[str, Any]:
        """Service-level cache counters: per domain, the cumulative
        PathCache layer hits/misses/evictions plus configured capacities
        (the same counters ``SynthesisStats`` reports per query), the
        scheduler's queue/budget observability section, and the
        per-stage latency aggregates (``stages``: count / mean / p50 /
        p99 per Fig. 3 stage over a sliding window — the capacity-planning
        view docs/architecture.md describes)."""
        with self._lock:
            counters = dict(self._counters)
            verify_counters = dict(self._verify_counters)
            reloads = self._reloads
        domains: Dict[str, Any] = {}
        for name, state in self._domains.items():
            cache = state.domain.path_cache
            domains[name] = {
                "counters": cache.snapshot(),
                "capacities": dict(cache.capacities),
                "entries": {
                    layer: len(cache.layer(layer))
                    for layer in (*cache.PERSISTED_LAYERS, "outcomes")
                },
            }
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": counters,
            "scheduler": self._scheduler.snapshot(),
            "stages": self._stage_latency.snapshot(),
            "verification": verify_counters,
            "reloads": reloads,
            "domains": domains,
        }

    def domain_names(self) -> Sequence[str]:
        return sorted(self._domains)

    def domain_info(self) -> Dict[str, Any]:
        """Per-domain provenance for ``GET /domains``: API count, grammar
        hash, and — for pack-backed domains — the pack name / version /
        source directory / content hash recorded at build time."""
        info: Dict[str, Any] = {}
        for name in sorted(self._domains):
            domain = self._domains[name].domain
            entry: Dict[str, Any] = {
                "description": domain.description,
                "apis": len(domain.document),
                "grammar_hash": domain.grammar_hash(),
            }
            if domain.provenance:
                entry["pack"] = dict(domain.provenance)
            info[name] = entry
        return info

    # ------------------------------------------------------------------
    # Hot snapshot reload (SIGHUP / POST /admin/reload)
    # ------------------------------------------------------------------

    def reload_snapshots(
        self, cache_dir: Optional[str] = None
    ) -> Dict[str, Any]:
        """Atomically adopt freshly loaded cache snapshots — and, for
        pack-backed domains, freshly read pack files — without dropping
        in-flight or queued work.

        Pack-backed domains (:mod:`repro.packs`) are re-read from disk
        first: an *edited* pack builds a whole new
        :class:`~repro.synthesis.domain.Domain` (new grammar hash, hence
        a new snapshot key) that is reference-swapped in — in-flight
        requests finish against the Synthesizer/Domain objects they
        already resolved; new requests see the new grammar.  An unchanged
        pack keeps its exact Domain object, so its results stay
        byte-identical across the reload.  A pack that no longer
        validates keeps serving its previous build and reports the
        validation error in the reload payload.

        Then, for every served domain, the snapshot is read from
        ``cache_dir`` (default: the directory currently in effect) into a
        *new* PathCache which is then reference-swapped in — requests
        already running keep the cache object they resolved, new requests
        see the new one (:meth:`Domain.reload_cache`).  Under the process
        backend the worker pools are replaced as well: old pools finish
        the work already submitted to them and are reaped in the
        background, new pools rebuild their domains (re-reading packs)
        and preload the new snapshots.  A domain whose snapshot is
        missing or stale keeps its current cache and reports
        ``snapshot_loaded: false``.  Safe to call concurrently (calls
        serialize) and while serving traffic.
        """
        with self._reload_lock:
            target_dir = cache_dir if cache_dir is not None else self._cache_dir
            domains: Dict[str, Any] = {}
            for name, state in self._domains.items():
                pack_info = self._refresh_pack(name, state)
                loaded = state.domain.reload_cache(target_dir)
                snapshot_file = str(state.domain.cache_file(target_dir))
                if loaded or pack_info.get("pack_reloaded"):
                    # A swapped pack means a new grammar hash, and the
                    # snapshot key embeds it — adopt the new file path
                    # even when no snapshot exists there yet.
                    state.snapshot_loaded = loaded
                    state.snapshot_file = snapshot_file
                domains[name] = {
                    "snapshot_loaded": loaded,
                    "snapshot_file": snapshot_file,
                    "grammar_hash": state.domain.grammar_hash(),
                    **pack_info,
                }
            self._cache_dir = target_dir
            if self.config.backend == "process":
                self._restart_pools()
            with self._lock:
                self._reloads += 1
                reloads = self._reloads
        return {
            "status": "ok",
            "reloads": reloads,
            "cache_dir": (
                str(target_dir) if target_dir is not None else None
            ),
            "domains": domains,
        }

    def _refresh_pack(
        self, name: str, state: _DomainState
    ) -> Dict[str, Any]:
        """Re-read one pack-backed domain from disk; caller holds the
        reload lock.  Swaps ``state.domain`` (and drops its Synthesizers,
        which wrap the old object) only when the pack content actually
        changed.  Non-pack domains report nothing."""
        try:
            refreshed = refresh_domain(name)
        except PackError as exc:
            # The edited pack no longer validates: the previous build
            # keeps serving, the caller sees exactly why.
            return {"pack_reloaded": False, "pack_error": str(exc)}
        if refreshed is None:
            if state.domain.provenance:
                return {"pack_reloaded": False}
            return {}
        with self._lock:
            state.domain = refreshed
            state.synthesizers = {
                self.config.engine: Synthesizer(
                    refreshed, engine=self.config.engine
                )
            }
            state.snapshot_loaded = False
        return {"pack_reloaded": True}

    def _restart_pools(self) -> None:
        """Swap in fresh process pools (new workers preload the current
        snapshots); old pools drain their submitted work in background
        reaper threads, so no in-flight future is dropped."""
        with self._lock:
            old = dict(self._pools)
            self._pools.clear()
        for pool in old.values():
            threading.Thread(
                target=pool.shutdown,
                kwargs={"wait": True},
                name="repro-pool-reaper",
                daemon=True,
            ).start()
        # Rebuild eagerly so the first post-reload request doesn't pay
        # worker spin-up.
        for domain_name, engine in old:
            self._pool(domain_name, engine)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_shutdown(self) -> None:
        """Stop admitting new requests; queued requests fail with
        ``shutting_down``; in-flight work keeps running."""
        with self._lock:
            self._draining = True
        self._scheduler.begin_shutdown()

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Wait for in-flight requests to finish (after
        :meth:`begin_shutdown`).  Returns True when the service is idle,
        False when ``grace_seconds`` elapsed with work still running."""
        return self._scheduler.drain(grace_seconds)

    def close(self) -> None:
        """Release worker pools.  Idempotent; implies
        :meth:`begin_shutdown`."""
        with self._lock:
            if self._closed:
                return
            self._draining = True
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
        self._scheduler.begin_shutdown()
        for pool in pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "SynthesisService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.begin_shutdown()
        self.drain(grace_seconds=30.0)
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SynthesisService(domains={sorted(self._domains)}, "
            f"backend={self.config.backend!r}, "
            f"inflight={self.inflight}/{self.config.max_inflight})"
        )
