"""Wire protocol shared by the HTTP and stdio serving front ends.

One request/response shape for both transports (docs/serving.md is the
reference):

Request (HTTP ``POST /synthesize`` body, or one stdio JSON line)::

    {"query": "print every line",        # required
     "domain": "textediting",            # optional (service default)
     "engine": "dggt",                   # optional (service default)
     "timeout": 5.0,                     # optional per-request budget (s)
     "priority": "interactive",          # optional admission class
                                         #   ("interactive" | "batch")
     "include_stats": false,             # optional: attach stats payload
     "include_trace": false,             # optional: attach per-stage trace
     "examples": [{"input": "aa",        # optional input→output examples:
                   "output": "-aa"}],    #   execution-guided verification
     "id": "req-42"}                     # optional opaque token, echoed

Success response: ``BatchItem.to_json()`` plus ``{"id": ...}`` — exactly
the payload ``repro batch --json`` emits per query, so batch and serving
consumers share one schema.  ``include_trace`` requests additionally
carry the per-stage ``trace`` payload (``repro batch --json --trace``
emits the same shape; schema in docs/architecture.md).  Error response::

    {"status": "timeout" | "error",
     "error": {"code": "<stable code>", "message": "..."},
     "id": ...}

Error codes are :data:`repro.errors.ERROR_CODES` plus the serving-only
codes :data:`SERVING_CODES` (``bad_request``, ``overloaded``,
``shutting_down``, ``not_found``, ``internal``).  Each code maps to one
HTTP status via :data:`HTTP_STATUS`; the stdio transport carries the same
payloads without the status line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.server.scheduler import PRIORITIES
from repro.synthesis.pipeline import BatchItem
from repro.verify.examples import parse_examples

#: Serving-layer codes (requests rejected before reaching a synthesizer).
#: ``deadline_exceeded`` is issued by the request scheduler when a queued
#: request's budget elapses before dispatch; ``overloaded`` responses may
#: carry a ``retry_after_ms`` hint inside the error object (HTTP also
#: sends it as a ``Retry-After`` header).
SERVING_CODES = (
    "bad_request",
    "overloaded",
    "deadline_exceeded",
    "shutting_down",
    "not_found",
    "internal",
)

#: code -> HTTP status.  Synthesis failures are 422 (the request was
#: well-formed; the query has no grammar-valid codelet), timeouts 504,
#: admission rejections 429/503.  Codes not listed map to 422 when they
#: come from the ReproError hierarchy and 500 otherwise.
HTTP_STATUS: Dict[str, int] = {
    "ok": 200,
    "bad_request": 400,
    "invalid_request": 400,
    "unknown_domain": 404,
    "not_found": 404,
    "overloaded": 429,
    "shutting_down": 503,
    "timeout": 504,
    "deadline_exceeded": 504,
    "invalid_examples": 400,
    "internal": 500,
}
_DEFAULT_ERROR_STATUS = 422


def http_status(code: str) -> int:
    return HTTP_STATUS.get(code, _DEFAULT_ERROR_STATUS)


class BadRequest(ReproError):
    """A request that fails protocol validation (missing query, wrong
    types, out-of-range timeout).  Always maps to ``bad_request``/400."""


@dataclass(frozen=True)
class SynthesisRequest:
    """A validated synthesis request, transport-independent."""

    query: str
    domain: Optional[str] = None
    engine: Optional[str] = None
    timeout: Optional[float] = None
    #: Admission class (one of
    #: :data:`repro.server.scheduler.PRIORITIES`); interactive requests
    #: are granted slots before batch ones and may evict queued batch
    #: work when the queue is full.
    priority: str = PRIORITIES[0]
    include_stats: bool = False
    include_trace: bool = False
    #: Validated input→output examples (tuple of
    #: :class:`repro.verify.IOExample`) or None — turns on
    #: execution-guided candidate verification.
    examples: Optional[tuple] = None
    id: Any = None


def parse_request(payload: Any) -> SynthesisRequest:
    """Validate a decoded JSON body into a :class:`SynthesisRequest`.

    Raises :class:`BadRequest` with a human-readable message; unknown keys
    are rejected so client typos ("querry") fail loudly instead of
    silently synthesizing the wrong thing.
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    allowed = {"query", "domain", "engine", "timeout", "priority",
               "include_stats", "include_trace", "examples", "id", "op"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise BadRequest(f"unknown request field(s): {unknown}")

    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise BadRequest("'query' must be a non-empty string")

    domain = payload.get("domain")
    if domain is not None and not isinstance(domain, str):
        raise BadRequest("'domain' must be a string")

    engine = payload.get("engine")
    if engine is not None and engine not in ("dggt", "hisyn"):
        raise BadRequest("'engine' must be 'dggt' or 'hisyn'")

    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise BadRequest("'timeout' must be a number of seconds")
        if timeout < 0:
            raise BadRequest("'timeout' must be non-negative")
        timeout = float(timeout)

    priority = payload.get("priority", PRIORITIES[0])
    if priority not in PRIORITIES:
        raise BadRequest(
            "'priority' must be one of "
            + " or ".join(repr(name) for name in PRIORITIES)
        )

    include_stats = payload.get("include_stats", False)
    if not isinstance(include_stats, bool):
        raise BadRequest("'include_stats' must be a boolean")

    include_trace = payload.get("include_trace", False)
    if not isinstance(include_trace, bool):
        raise BadRequest("'include_trace' must be a boolean")

    # Malformed examples raise InvalidExamplesError (its own stable code,
    # also 400) rather than BadRequest: clients distinguish "fix your
    # payload shape" from "fix your examples".
    examples = None
    if payload.get("examples") is not None:
        examples = parse_examples(payload["examples"])

    return SynthesisRequest(
        query=query.strip(),
        domain=domain,
        engine=engine,
        timeout=timeout,
        priority=priority,
        include_stats=include_stats,
        include_trace=include_trace,
        examples=examples,
        id=payload.get("id"),
    )


def ok_response(
    item: BatchItem, request: Optional[SynthesisRequest] = None
) -> Tuple[int, Dict[str, Any]]:
    """(HTTP status, payload) for a finished :class:`BatchItem` — which may
    itself be a captured failure (timeout / synthesis error)."""
    include_stats = request.include_stats if request is not None else False
    include_trace = request.include_trace if request is not None else False
    payload = item.to_json(
        include_stats=include_stats, include_trace=include_trace
    )
    payload["id"] = request.id if request is not None else None
    if item.ok:
        return 200, payload
    return http_status(payload["error"]["code"]), payload


def error_response(
    code: str,
    message: str,
    *,
    id: Any = None,
    retry_after_ms: Optional[int] = None,
    queue_wait_ms: Optional[float] = None,
) -> Tuple[int, Dict[str, Any]]:
    """(HTTP status, payload) for a request rejected by the serving layer
    itself (never reached a synthesizer).

    ``retry_after_ms`` (overloaded responses) is the scheduler's
    backpressure hint; ``queue_wait_ms`` (deadline_exceeded responses)
    is the time the request spent queued before expiring.  Both are
    omitted from the payload when None, keeping pre-scheduler responses
    byte-identical.
    """
    status = "timeout" if code in ("timeout", "deadline_exceeded") else "error"
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    payload: Dict[str, Any] = {"status": status, "error": error, "id": id}
    if queue_wait_ms is not None:
        payload["queue_wait_ms"] = queue_wait_ms
    return http_status(code), payload
