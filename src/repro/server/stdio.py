"""JSON-lines stdio front end (language-server style).

One request per line on stdin, one response per line on stdout — the
same payloads as the HTTP endpoints, without the status line.  An editor
plugin (the paper's IDE-hint scenario) keeps one ``repro serve --stdio``
child alive and gets warm-cache latency on every keystroke-triggered
query without paying process startup or a socket.

Line protocol (``op`` defaults to ``synthesize``; synthesize requests
accept the same optional fields as HTTP, including ``include_trace`` for
the per-stage pipeline trace, and the ``stats`` payload carries the same
per-stage p50/p99 ``stages`` section as ``GET /stats``)::

    -> {"query": "print every line", "id": 1}
    <- {"status": "ok", "codelet": "PRINT(...)", "id": 1, ...}
    -> {"op": "health"}
    <- {"op": "health", "health": {...}}
    -> {"op": "stats"}
    <- {"op": "stats", "stats": {...}}
    -> {"op": "reload"}
    <- {"op": "reload", "reload": {...}}
    -> {"op": "shutdown"}
    <- {"op": "shutdown", "ok": true}

The ``reload`` op (and SIGHUP, when signal handlers are installed)
hot-swaps freshly loaded cache snapshots without dropping in-flight or
queued work — the same semantics as the HTTP ``POST /admin/reload``; an
optional ``"cache_dir"`` field redirects the snapshot directory.

Requests are served strictly in order (responses never interleave), so
admission control rarely triggers here; it still guards the service when
the same :class:`SynthesisService` also backs an HTTP listener.

Lifecycle: EOF or a ``shutdown`` op drains and exits.  SIGTERM/SIGINT is
graceful too: mid-request it lets the in-flight request finish, answer,
and then exits; while idle (blocked on stdin) it exits immediately.
"""

from __future__ import annotations

import json
import signal
import sys
from typing import Any, IO, Optional

from repro.server.protocol import error_response
from repro.server.service import SynthesisService


class _Terminate(Exception):
    """Raised by the signal handler to break out of a blocking readline."""


def _respond(writer: IO[str], payload: Any) -> None:
    writer.write(json.dumps(payload) + "\n")
    writer.flush()


def serve_stdio(
    service: SynthesisService,
    reader: Optional[IO[str]] = None,
    writer: Optional[IO[str]] = None,
    *,
    grace_seconds: float = 30.0,
    install_signal_handlers: bool = True,
) -> bool:
    """Serve JSON lines from ``reader`` (default stdin) to ``writer``
    (default stdout) until EOF, a ``shutdown`` op, or SIGINT/SIGTERM.

    Returns True when the final drain completed within ``grace_seconds``
    (with serial dispatch it always does unless another front end shares
    the service).
    """
    reader = sys.stdin if reader is None else reader
    writer = sys.stdout if writer is None else writer

    stop_requested = False
    previous = {}

    def _handle(signum: int, frame: Any) -> None:
        nonlocal stop_requested
        stop_requested = True
        service.begin_shutdown()
        if service.inflight == 0:
            # Idle: the main thread is blocked in readline(); raising
            # here unblocks it (PEP 475 retries unless the handler
            # raises).  Mid-request the flag alone is enough — the loop
            # finishes the in-flight request, answers, and exits.
            raise _Terminate()

    if install_signal_handlers:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _handle)

    try:
        while not stop_requested:
            try:
                line = reader.readline()
                if not line:  # EOF
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    _, response = error_response(
                        "bad_request", f"malformed JSON line: {exc}"
                    )
                    _respond(writer, response)
                    continue
                op = (
                    payload.get("op", "synthesize")
                    if isinstance(payload, dict) else "synthesize"
                )
                req_id = (
                    payload.get("id") if isinstance(payload, dict) else None
                )
                if op == "synthesize":
                    _, response = service.handle_payload(payload)
                elif op == "health":
                    response = {"op": "health", "id": req_id,
                                "health": service.health()}
                elif op == "stats":
                    response = {"op": "stats", "id": req_id,
                                "stats": service.stats()}
                elif op == "reload":
                    cache_dir = (
                        payload.get("cache_dir")
                        if isinstance(payload, dict) else None
                    )
                    if cache_dir is not None and not isinstance(
                        cache_dir, str
                    ):
                        _, response = error_response(
                            "bad_request", "'cache_dir' must be a string",
                            id=req_id,
                        )
                    else:
                        try:
                            response = {
                                "op": "reload",
                                "id": req_id,
                                "reload": service.reload_snapshots(cache_dir),
                            }
                        except Exception as exc:  # service must stay up
                            _, response = error_response(
                                "internal",
                                f"{type(exc).__name__}: {exc}",
                                id=req_id,
                            )
                elif op == "shutdown":
                    service.begin_shutdown()
                    stop_requested = True
                    response = {"op": "shutdown", "id": req_id, "ok": True}
                else:
                    _, response = error_response(
                        "bad_request", f"unknown op {op!r}", id=req_id
                    )
                _respond(writer, response)
            except _Terminate:
                # Signal arrived while idle (or between requests): the
                # in-flight request, if any, already answered — exit now.
                break
    finally:
        if install_signal_handlers:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        service.begin_shutdown()
        drained = service.drain(grace_seconds=grace_seconds)
        service.close()
    return drained
