"""Long-running synthesis serving (``repro serve``).

The paper's pitch is *near real-time* NL-to-code translation; this
package is the deployment shape that claim implies — a resident service
with warm grammar caches, not a per-query process.  Three layers:

* :class:`SynthesisService` (:mod:`repro.server.service`) — warm
  multi-domain routing, deadline propagation, structured errors,
  graceful drain, hot snapshot reload;
* :class:`RequestScheduler` (:mod:`repro.server.scheduler`) — bounded
  admission queueing with backpressure and per-domain concurrency
  budgets, sitting between the transports and the service;
* :mod:`repro.server.http` — ``POST /synthesize`` + ``GET
  /healthz``/``/stats``/``/domains`` over a stdlib threading HTTP server;
* :mod:`repro.server.multiproc` — pre-fork multi-worker serving
  (``repro serve --workers N``): a supervisor shares one listening
  socket (or ``SO_REUSEPORT`` siblings) across N worker processes,
  restarts crashes, fans out reload/drain, and merges per-worker stats;
* :mod:`repro.server.stdio` — the same payloads as JSON lines over
  stdin/stdout (language-server style, one child per editor session).

Clients live in :mod:`repro.client`; the wire format in
:mod:`repro.server.protocol` and docs/serving.md.
"""

from repro.server.http import (
    SynthesisHTTPServer,
    run_http,
    start_http_server,
)
from repro.server.multiproc import (
    WorkerStatsBoard,
    run_supervisor,
    write_port_file,
)
from repro.server.protocol import (
    BadRequest,
    SynthesisRequest,
    error_response,
    http_status,
    ok_response,
    parse_request,
)
from repro.server.scheduler import (
    Grant,
    QueueFull,
    RequestScheduler,
    SchedulerDraining,
)
from repro.server.service import ServerConfig, SynthesisService
from repro.server.stdio import serve_stdio

__all__ = [
    "ServerConfig",
    "SynthesisService",
    "RequestScheduler",
    "Grant",
    "QueueFull",
    "SchedulerDraining",
    "SynthesisHTTPServer",
    "SynthesisRequest",
    "BadRequest",
    "parse_request",
    "ok_response",
    "error_response",
    "http_status",
    "run_http",
    "start_http_server",
    "run_supervisor",
    "WorkerStatsBoard",
    "write_port_file",
    "serve_stdio",
]
