"""Evaluation domains (paper Table I) and the named domain registry.

The registry maps a *name* to a factory, which is what lets execution
backends rebuild a domain anywhere: the process-pool backend of
:meth:`Synthesizer.synthesize_many` ships only ``domain.name`` (plus the
engine config) over the worker pipe and calls :func:`get` on the other
side, so the unpicklable Domain object never crosses a process boundary.

``get(name)`` returns a per-process shared instance (one warm
:class:`~repro.grammar.path_cache.PathCache` per domain per process);
``get(name, fresh=True)`` builds a private instance — benchmarks and cache
tests use it to guarantee a cold start.  Custom domains join the registry
via :func:`register`.
"""

import inspect
from typing import Callable, Dict, List

from repro.errors import DomainError
from repro.synthesis.domain import Domain


def _textediting(fresh: bool = False) -> Domain:
    from repro.domains.textediting import build_domain

    return build_domain(fresh=fresh)


def _astmatcher(fresh: bool = False) -> Domain:
    from repro.domains.astmatcher import build_domain

    return build_domain(fresh=fresh)


#: name -> factory(fresh=False).  Factories own their per-process caching
#: (the built-in ones memoize inside their modules), so the registry holds
#: no domain objects of its own.
_REGISTRY: Dict[str, Callable[..., Domain]] = {
    "textediting": _textediting,
    "astmatcher": _astmatcher,
}


def _accepts_fresh(factory: Callable[..., Domain]) -> bool:
    """Whether ``factory`` can be called as ``factory(fresh=...)``.

    Decided by *signature inspection*, never by catching ``TypeError``
    from the call itself — a ``TypeError`` raised inside a factory's own
    body must propagate, not be misread as "no ``fresh`` parameter" and
    silently retried.  Uninspectable callables (C extensions, odd
    wrappers) are assumed to take the keyword, matching the documented
    factory contract.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return True
    try:
        signature.bind(fresh=False)
    except TypeError:
        return False
    return True


def get(name: str, *, fresh: bool = False) -> Domain:
    """A registered domain by name.

    ``fresh=False`` (default) returns the process-shared instance;
    ``fresh=True`` builds a new private one (cold caches, safe to mutate).
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise DomainError(
            f"unknown domain {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    if _accepts_fresh(factory):
        return factory(fresh=fresh)
    # A zero-argument factory: every call is a fresh build, so the flag
    # is moot.
    return factory()


def load_domain(name: str, *, fresh: bool = False) -> Domain:
    """Load a built-in or registered domain by name (alias of :func:`get`,
    kept as the README-facing spelling)."""
    return get(name, fresh=fresh)


def load_domains(
    names: "Iterable[str] | None" = None, *, fresh: bool = False
) -> Dict[str, Domain]:
    """Resolve several registered domains at once, as ``name -> Domain``.

    ``names=None`` loads every registered domain.  Order and duplicates in
    ``names`` are normalised away; an unknown name raises
    :class:`~repro.errors.DomainError` before anything is built, so callers
    (e.g. ``repro serve --domains``) fail fast instead of half-starting.
    """
    wanted = available_domains() if names is None else list(names)
    unknown = [n for n in wanted if not is_registered(n)]
    if unknown:
        raise DomainError(
            f"unknown domain(s) {sorted(set(unknown))}; "
            f"available: {available_domains()}"
        )
    return {n.lower(): get(n, fresh=fresh) for n in wanted}


def register(name: str, factory: Callable[..., Domain]) -> None:
    """Register a custom domain factory under ``name``.

    ``factory`` should accept a ``fresh`` keyword (build a new instance
    when true, may return a shared one otherwise); a zero-argument
    callable also works and is treated as always-fresh.  Registration is
    per process — with the process execution backend, register at import
    time (module scope) so pool workers re-run it.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise DomainError(f"domain {name!r} is already registered")
    _REGISTRY[key] = factory


def unregister(name: str) -> None:
    """Remove a custom domain factory (built-ins cannot be removed)."""
    key = name.lower()
    if key in ("textediting", "astmatcher"):
        raise DomainError(f"cannot unregister built-in domain {name!r}")
    if key not in _REGISTRY:
        raise DomainError(f"unknown domain {name!r}")
    del _REGISTRY[key]


def is_registered(name: str) -> bool:
    return name.lower() in _REGISTRY


def available_domains() -> List[str]:
    return sorted(_REGISTRY)


def clear_cached_domains() -> None:
    """Drop every factory's per-process shared instance (best effort:
    factories expose ``cache_clear``).  Benchmarks call this so a
    subsequent pass — including forked pool workers — really starts cold.
    """
    for factory in _REGISTRY.values():
        clear = getattr(factory, "cache_clear", None)
        if clear is not None:
            clear()


def _builtin_cache_clear(factory_name: str):
    def clear() -> None:
        import repro.domains.astmatcher as astmatcher
        import repro.domains.textediting as textediting

        {"textediting": textediting, "astmatcher": astmatcher}[
            factory_name
        ].build_domain.cache_clear()

    return clear


_textediting.cache_clear = _builtin_cache_clear("textediting")
_astmatcher.cache_clear = _builtin_cache_clear("astmatcher")


# Domain packs (repro.packs): the shipped builtin packs and anything on
# $REPRO_PACK_PATH register here, at import time — which is precisely what
# makes pack domains resolvable inside forked/spawned process-pool workers
# (they re-import this module and re-run the discovery).  The import is
# deferred to the bottom of the module because the loader needs
# :func:`register` to exist.
from repro.packs.loader import register_env_packs as _register_env_packs  # noqa: E402

_register_env_packs()
