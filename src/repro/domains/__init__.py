"""Evaluation domains (paper Table I) and the domain registry."""

from typing import Callable, Dict, List

from repro.errors import DomainError
from repro.synthesis.domain import Domain


def _textediting() -> Domain:
    from repro.domains.textediting import build_domain

    return build_domain()


def _astmatcher() -> Domain:
    from repro.domains.astmatcher import build_domain

    return build_domain()


_REGISTRY: Dict[str, Callable[[], Domain]] = {
    "textediting": _textediting,
    "astmatcher": _astmatcher,
}


def load_domain(name: str) -> Domain:
    """Load a built-in domain by name ("textediting" or "astmatcher")."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise DomainError(
            f"unknown domain {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_domains() -> List[str]:
    return sorted(_REGISTRY)
