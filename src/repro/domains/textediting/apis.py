"""API document for the TextEditing domain (52 APIs, paper Table I).

Each entry mirrors the reference documentation style of Desai et al. [9]:
the function name, explicit name tokens (the DSL uses fused ALL-CAPS names),
and a one-line description whose content words serve as matching keywords.
"""

from repro.nlu.docs import ApiDoc

TEXTEDITING_APIS = [
    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    ApiDoc("INSERT", "Insert a string at a position within an iteration scope.",
           ("insert",), "command"),
    ApiDoc("DELETE", "Delete the target tokens or string within an iteration scope.",
           ("delete",), "command"),
    ApiDoc("REPLACE", "Replace the source string with the destination string.",
           ("replace",), "command"),
    ApiDoc("SELECT", "Select the target tokens or string for later commands.",
           ("select",), "command"),
    ApiDoc("COPY", "Copy the target to a position within an iteration scope.",
           ("copy",), "command"),
    ApiDoc("MOVE", "Move the target to a position within an iteration scope.",
           ("move",), "command"),
    ApiDoc("PRINT", "Print the target tokens or string.",
           ("print",), "command"),
    ApiDoc("COUNT", "Count the target tokens or string.",
           ("count",), "command"),
    ApiDoc("CAPITALIZE", "Convert the target to upper case.",
           ("capitalize",), "command"),
    ApiDoc("LOWERCASE", "Convert the target to lower case.",
           ("lowercase",), "command"),
    ApiDoc("SORT", "Sort the units of a scope.",
           ("sort",), "command"),
    # ------------------------------------------------------------------
    # String slots
    # ------------------------------------------------------------------
    ApiDoc("STRING", "A literal string value given by the user.",
           ("string",), "string"),
    ApiDoc("SRCSTRING", "The source string a replace command searches for.",
           ("src", "string"), "string"),
    ApiDoc("DSTSTRING", "The destination string a replace command writes.",
           ("dst", "string"), "string"),
    ApiDoc("ANCHORSTR", "An anchor string that after and before positions refer to.",
           ("anchor", "string"), "string"),
    # ------------------------------------------------------------------
    # Positions
    # ------------------------------------------------------------------
    ApiDoc("START", "The start of the current scope unit.",
           ("start",), "position"),
    ApiDoc("END", "The end of the current scope unit.",
           ("end",), "position"),
    ApiDoc("POSITION", "An absolute character position given as a number.",
           ("position",), "position"),
    ApiDoc("AFTER", "The position right after an anchor token or string.",
           ("after",), "position"),
    ApiDoc("BEFORE", "The position right before an anchor token or string.",
           ("before",), "position"),
    ApiDoc("STARTFROM", "Start from the given character offset.",
           ("start", "from"), "position"),
    ApiDoc("ENDAT", "End at the given character offset.",
           ("end", "at"), "position"),
    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    ApiDoc("ITERATIONSCOPE", "Iterate a command over scope units that satisfy a condition.",
           ("iteration", "scope"), "iteration"),
    ApiDoc("LINESCOPE", "Iterate over lines.",
           ("line", "scope"), "scope"),
    ApiDoc("WORDSCOPE", "Iterate over words.",
           ("word", "scope"), "scope"),
    ApiDoc("SENTENCESCOPE", "Iterate over sentences.",
           ("sentence", "scope"), "scope"),
    ApiDoc("PARAGRAPHSCOPE", "Iterate over paragraphs.",
           ("paragraph", "scope"), "scope"),
    ApiDoc("DOCUMENTSCOPE", "Apply to the whole document.",
           ("document", "scope"), "scope"),
    ApiDoc("CHARSCOPE", "Iterate over characters.",
           ("char", "scope"), "scope"),
    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    ApiDoc("BCONDOCCURRENCE", "Boolean condition on the occurrences inside a scope unit.",
           ("condition", "occurrence"), "condition"),
    ApiDoc("ALWAYS", "Condition that always holds (no filtering).",
           ("always",), "condition"),
    ApiDoc("CONTAINS", "Scope unit contains the given token or string.",
           ("contains",), "occurrence"),
    ApiDoc("STARTSWITH", "Scope unit starts with the given token or string.",
           ("start", "with"), "occurrence"),
    ApiDoc("ENDSWITH", "Scope unit ends with the given token or string.",
           ("end", "with"), "occurrence"),
    ApiDoc("MATCHES", "Scope unit matches the given token or string exactly.",
           ("match",), "occurrence"),
    ApiDoc("EMPTY", "Scope unit is empty or blank.",
           ("empty",), "occurrence"),
    # ------------------------------------------------------------------
    # Quantifiers
    # ------------------------------------------------------------------
    ApiDoc("ALL", "Quantifier: every occurrence.",
           ("all",), "quantifier"),
    ApiDoc("FIRSTOCC", "Quantifier: the first occurrence.",
           ("first", "occ"), "quantifier"),
    ApiDoc("LASTOCC", "Quantifier: the last occurrence.",
           ("last", "occ"), "quantifier"),
    ApiDoc("NTHOCC", "Quantifier: the n-th occurrence, n given as a number.",
           ("nth", "occ"), "quantifier"),
    # ------------------------------------------------------------------
    # Ordinal target selectors
    # ------------------------------------------------------------------
    ApiDoc("FIRSTTOKEN", "Target selector: the first token of its kind.",
           ("first", "token"), "selector"),
    ApiDoc("LASTTOKEN", "Target selector: the last token of its kind.",
           ("last", "token"), "selector"),
    ApiDoc("NTHTOKEN", "Target selector: the n-th token of its kind.",
           ("nth", "token"), "selector"),
    # ------------------------------------------------------------------
    # Token classes
    # ------------------------------------------------------------------
    ApiDoc("NUMBERTOKEN", "A numeral token (digits).",
           ("number", "token"), "token"),
    ApiDoc("WORDTOKEN", "A word token.",
           ("word", "token"), "token"),
    ApiDoc("CHARTOKEN", "A character token; optionally the n-th character.",
           ("character", "token"), "token"),
    ApiDoc("LINETOKEN", "A line token.",
           ("line", "token"), "token"),
    ApiDoc("SENTENCETOKEN", "A sentence token.",
           ("sentence", "token"), "token"),
    ApiDoc("COMMATOKEN", "The comma symbol.",
           ("comma", "token"), "token"),
    ApiDoc("COLONTOKEN", "The colon symbol.",
           ("colon", "token"), "token"),
    ApiDoc("SEMICOLONTOKEN", "The semicolon symbol.",
           ("semicolon", "token"), "token"),
    ApiDoc("SPACETOKEN", "The whitespace symbol.",
           ("space", "token"), "token"),
    ApiDoc("TABTOKEN", "The tab symbol.",
           ("tab", "token"), "token"),
    ApiDoc("DASHTOKEN", "The dash or hyphen symbol.",
           ("dash", "token"), "token"),
    ApiDoc("QUOTETOKEN", "The quotation-mark symbol.",
           ("quote", "token"), "token"),
    ApiDoc("CAPSTOKEN", "An upper-case letter.",
           ("caps", "token"), "token"),
]
