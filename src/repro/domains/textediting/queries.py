"""TextEditing query set: 200 queries with authored ground truths.

Re-creation of the 200-query TextEditing set of Desai et al. [9] / HISyn
(see DESIGN.md, "Substitutions").  Queries are organized in template
families whose phrasing mirrors the paper's published examples; ground
truths are authored from the intended semantics of each template —
*not* from system output — so synthesis mistakes count against accuracy.

Family complexity spans the paper's reported range: from single-edge
commands up to 6-edge conditional commands with orphan-inducing phrasing.
"""

from __future__ import annotations

from typing import List

from repro.eval.dataset import QueryCase, make_cases, validate_dataset

# Shared vocabulary: (surface plural, surface singular, scope API)
_SCOPES = (
    ("lines", "line", "LINESCOPE"),
    ("sentences", "sentence", "SENTENCESCOPE"),
    ("paragraphs", "paragraph", "PARAGRAPHSCOPE"),
    ("words", "word", "WORDSCOPE"),
)

# (surface, token API)
_TOKENS = (
    ("numerals", "NUMBERTOKEN"),
    ("numbers", "NUMBERTOKEN"),
    ("digits", "NUMBERTOKEN"),
    ("commas", "COMMATOKEN"),
    ("colons", "COLONTOKEN"),
    ("semicolons", "SEMICOLONTOKEN"),
    ("spaces", "SPACETOKEN"),
    ("tabs", "TABTOKEN"),
    ("dashes", "DASHTOKEN"),
    ("quotes", "QUOTETOKEN"),
)


def _iter(scope: str, cond: str = "") -> str:
    inner = f"{scope}()"
    if cond:
        inner += f", BCONDOCCURRENCE({cond})"
    return f"ITERATIONSCOPE({inner})"


def _build() -> List[QueryCase]:
    cases: List[QueryCase] = []
    n = 1

    def add(family, entries, complexity):
        nonlocal n
        cases.extend(make_cases(family, entries, n, "te", complexity))
        n += len(entries)

    # ------------------------------------------------------------------
    # F1: append/insert a string into scopes filtered by a contained token
    # (the paper's example 1 family).  28 cases.
    # ------------------------------------------------------------------
    f1 = []
    f1_verbs = ("append", "add", "insert", "put")
    f1_strings = (":", "#", "->", "*")
    for i, (tok_word, tok_api) in enumerate(_TOKENS[:7]):
        verb = f1_verbs[i % 4]
        s = f1_strings[i % 4]
        plural, singular, scope_api = _SCOPES[i % 3]
        f1.append((
            f'{verb} "{s}" in every {singular} containing {tok_word}',
            f'INSERT(STRING("{s}"), '
            f'{_iter(scope_api, f"CONTAINS({tok_api}()), ALL()")})',
        ))
        f1.append((
            f'{verb} "{s}" into each {singular} that contains {tok_word}',
            f'INSERT(STRING("{s}"), '
            f'{_iter(scope_api, f"CONTAINS({tok_api}()), ALL()")})',
        ))
        f1.append((
            f'{verb} "{s}" to all {plural} containing {tok_word}',
            f'INSERT(STRING("{s}"), '
            f'{_iter(scope_api, f"CONTAINS({tok_api}()), ALL()")})',
        ))
        f1.append((
            f'{verb} "{s}" in every {singular} that includes {tok_word}',
            f'INSERT(STRING("{s}"), '
            f'{_iter(scope_api, f"CONTAINS({tok_api}()), ALL()")})',
        ))
    add("append_contains", f1, complexity=4)

    # ------------------------------------------------------------------
    # F2: insert at start/end of scope units (position semantics; known
    # PP-collapse challenge).  10 cases.
    # ------------------------------------------------------------------
    f2 = []
    for i, pos_word in enumerate(("start", "end")):
        pos_api = "START" if pos_word == "start" else "END"
        for j in range(5):
            plural, singular, scope_api = _SCOPES[j % 4]
            s = (":", ";", "-", ">", ".")[j]
            f2.append((
                f'insert "{s}" at the {pos_word} of {"each" if j % 2 else "every"} {singular}',
                f'INSERT(STRING("{s}"), {pos_api}(), '
                f'{_iter(scope_api, "ALL()")})',
            ))
    add("insert_position", f2, complexity=4)

    # ------------------------------------------------------------------
    # F3: conditional insert with a character offset (paper example 2).
    # 8 cases.
    # ------------------------------------------------------------------
    f3 = []
    for i in range(8):
        plural, singular, scope_api = _SCOPES[i % 2]
        mark = ("-", "*", ">", "#")[i % 4]
        s = (":", ";", ",", ".")[i % 4]
        count = (14, 3, 8, 20)[i % 4]
        relation = "starts" if i < 4 else "ends"
        rel_api = "STARTSWITH" if i < 4 else "ENDSWITH"
        cond = f'{rel_api}("{mark}")'
        f3.append((
            f'if a {singular} {relation} with "{mark}", '
            f'add "{s}" after {count} characters',
            f'INSERT(STRING("{s}"), AFTER(CHARTOKEN("{count}")), '
            + _iter(scope_api, cond) + ')',
        ))
    add("conditional_insert", f3, complexity=6)

    # ------------------------------------------------------------------
    # F4: delete scope units by contained-token condition.  18 cases.
    # ------------------------------------------------------------------
    f4 = []
    f4_verbs = ("delete", "remove", "erase")
    for i, (tok_word, tok_api) in enumerate(_TOKENS[:9]):
        verb = f4_verbs[i % 3]
        plural, singular, scope_api = _SCOPES[i % 4]
        f4.append((
            f'{verb} every {singular} that contains {tok_word}',
            f'DELETE({_iter(scope_api, f"CONTAINS({tok_api}()), ALL()")})',
        ))
        f4.append((
            f'{verb} all {plural} containing {tok_word}',
            f'DELETE({_iter(scope_api, f"CONTAINS({tok_api}()), ALL()")})',
        ))
    add("delete_conditional", f4, complexity=4)

    # ------------------------------------------------------------------
    # F5: replace A with B inside a scope.  16 cases.
    # ------------------------------------------------------------------
    f5 = []
    f5_pairs = (
        ("foo", "bar"), ("colour", "color"), ("Mr", "Mister"),
        ("&", "and"), (";", ","), ("TODO", "DONE"), ("4", "four"),
        ("hte", "the"),
    )
    for i, (a, b) in enumerate(f5_pairs):
        verb = "replace" if i % 2 == 0 else "substitute"
        plural, singular, scope_api = _SCOPES[i % 4]
        f5.append((
            f'{verb} "{a}" with "{b}" in all {plural}',
            f'REPLACE(SRCSTRING("{a}"), DSTSTRING("{b}"), '
            f'{_iter(scope_api, "ALL()")})',
        ))
        f5.append((
            f'{verb} "{a}" with "{b}" in the document',
            f'REPLACE(SRCSTRING("{a}"), DSTSTRING("{b}"), '
            f'{_iter("DOCUMENTSCOPE")})',
        ))
    add("replace", f5, complexity=4)

    # ------------------------------------------------------------------
    # F6: print/count with boundary conditions.  16 cases.
    # ------------------------------------------------------------------
    f6 = []
    for i in range(16):
        verb, api = (("print", "PRINT"), ("count", "COUNT"))[i % 2]
        plural, singular, scope_api = _SCOPES[i % 3]
        s = (";", ":", "-", "#", "!", "?", ".", ",")[i % 8]
        rel, rel_api = (
            ("ending with", "ENDSWITH"),
            ("starting with", "STARTSWITH"),
        )[(i // 2) % 2]
        cond = f'{rel_api}("{s}"), ALL()'
        f6.append((
            f'{verb} all {plural} {rel} "{s}"',
            f'{api}(' + _iter(scope_api, cond) + ')',
        ))
    add("print_count_boundary", f6, complexity=4)

    # ------------------------------------------------------------------
    # F7: ordinal target selection.  16 cases.
    # ------------------------------------------------------------------
    f7 = []
    f7_verbs = (("select", "SELECT"), ("print", "PRINT"),
                ("delete", "DELETE"), ("capitalize", "CAPITALIZE"))
    for i in range(16):
        verb, api = f7_verbs[i % 4]
        ordinal, ord_api = (("first", "FIRSTTOKEN"), ("last", "LASTTOKEN"))[
            (i // 4) % 2
        ]
        plural, singular, scope_api = _SCOPES[:3][i % 3]
        prep = "in" if i % 2 == 0 else "of"
        f7.append((
            f'{verb} the {ordinal} word {prep} every {singular}',
            f'{api}({ord_api}(WORDTOKEN()), '
            f'{_iter(scope_api, "ALL()")})',
        ))
    add("ordinal_target", f7, complexity=5)

    # ------------------------------------------------------------------
    # F8: move/copy a target to a position.  12 cases.
    # ------------------------------------------------------------------
    f8 = []
    for i in range(12):
        verb, api = (("copy", "COPY"), ("move", "MOVE"))[i % 2]
        ordinal, ord_api = (("first", "FIRSTTOKEN"), ("last", "LASTTOKEN"))[
            (i // 2) % 2
        ]
        pos_word, pos_api = (("end", "END"), ("start", "START"))[i % 2]
        plural, singular, scope_api = _SCOPES[i % 3]
        f8.append((
            f'{verb} the {ordinal} word to the {pos_word} of each {singular}'
            + ("" if i < 6 else " please"),
            f'{api}({ord_api}(WORDTOKEN()), {pos_api}(), '
            f'{_iter(scope_api, "ALL()")})',
        ))
    add("move_copy_position", f8, complexity=5)

    # ------------------------------------------------------------------
    # F9: empty-unit conditions.  8 cases.
    # ------------------------------------------------------------------
    f9 = []
    for i in range(8):
        verb, api = (("delete", "DELETE"), ("count", "COUNT"),
                     ("print", "PRINT"), ("select", "SELECT"))[i % 4]
        adj = "empty" if i < 4 else "blank"
        plural, singular, scope_api = _SCOPES[i % 2]
        f9.append((
            f'{verb} all {adj} {plural}',
            f'{api}({_iter(scope_api, "EMPTY(), ALL()")})',
        ))
    add("empty_units", f9, complexity=3)

    # ------------------------------------------------------------------
    # F10: simple whole-scope commands.  14 cases.
    # ------------------------------------------------------------------
    f10 = []
    f10_specs = (
        ("print", "PRINT"), ("count", "COUNT"),
        ("lowercase", "LOWERCASE"), ("capitalize", "CAPITALIZE"),
        ("select", "SELECT"), ("delete", "DELETE"), ("copy", "COPY"),
    )
    token_of_scope = {
        "line": "LINETOKEN", "word": "WORDTOKEN",
        "sentence": "SENTENCETOKEN",
    }
    for i in range(14):
        verb, api = f10_specs[i % 7]
        det = "every" if i % 2 == 0 else "each"
        if i < 7:
            plural, singular, scope_api = _SCOPES[i % 4]
            f10.append((
                f'{verb} {det} {singular}',
                f'{api}({_iter(scope_api, "ALL()")})',
            ))
        else:
            # "print each word of the document": the noun is the token
            # target, the document is the iteration scope.
            plural, singular, scope_api = (_SCOPES[0], _SCOPES[1], _SCOPES[3])[i % 3]
            f10.append((
                f'{verb} {det} {singular} of the document',
                f'{api}({token_of_scope[singular]}(), '
                f'{_iter("DOCUMENTSCOPE", "ALL()")})',
            ))
    add("simple_scope", f10, complexity=2)

    # ------------------------------------------------------------------
    # F11: sort scope units within a larger scope.  6 cases.
    # ------------------------------------------------------------------
    f11 = []
    f11_specs = (
        ("lines", "LINESCOPE", "the document", "DOCUMENTSCOPE", ""),
        ("words", "WORDSCOPE", "the document", "DOCUMENTSCOPE", ""),
        ("sentences", "SENTENCESCOPE", "the document", "DOCUMENTSCOPE", ""),
        ("lines", "LINESCOPE", "every paragraph", "PARAGRAPHSCOPE", "ALL()"),
        ("words", "WORDSCOPE", "every sentence", "SENTENCESCOPE", "ALL()"),
        ("words", "WORDSCOPE", "each line", "LINESCOPE", "ALL()"),
    )
    for inner, inner_api, outer, outer_api, cond in f11_specs:
        f11.append((
            f'sort the {inner} of {outer}',
            f'SORT({inner_api}(), {_iter(outer_api, cond)})',
        ))
    add("sort_scope", f11, complexity=3)

    # ------------------------------------------------------------------
    # F12: ordinal character deletion/capitalization.  8 cases.
    # ------------------------------------------------------------------
    f12 = []
    for i in range(8):
        verb, api = (("remove", "DELETE"), ("delete", "DELETE"),
                     ("capitalize", "CAPITALIZE"), ("select", "SELECT"))[i % 4]
        ordinal, ord_api = (("first", "FIRSTTOKEN"), ("last", "LASTTOKEN"))[
            (i // 4) % 2
        ]
        plural, singular, scope_api = (_SCOPES[3], _SCOPES[0])[i % 2]
        f12.append((
            f'{verb} the {ordinal} character of every {singular}',
            f'{api}({ord_api}(CHARTOKEN()), '
            f'{_iter(scope_api, "ALL()")})',
        ))
    add("ordinal_character", f12, complexity=5)

    # ------------------------------------------------------------------
    # F13: absolute position insertion.  10 cases.
    # ------------------------------------------------------------------
    f13 = []
    for i in range(10):
        s = (">", "*", "~", "|", "^")[i % 5]
        count = (5, 1, 12, 40, 7)[i % 5]
        plural, singular, scope_api = _SCOPES[i % 2]
        f13.append((
            f'insert "{s}" at position {count} in every {singular}',
            f'INSERT(STRING("{s}"), POSITION("{count}"), '
            f'{_iter(scope_api, "ALL()")})',
        ))
    add("absolute_position", f13, complexity=5)

    # ------------------------------------------------------------------
    # F14: exact-match conditions.  8 cases.
    # ------------------------------------------------------------------
    f14 = []
    for i in range(8):
        verb, api = (("select", "SELECT"), ("delete", "DELETE"),
                     ("print", "PRINT"), ("count", "COUNT"))[i % 4]
        s = ("TODO", "N/A", "---", "EOF", "null", "x", "End", "chapter")[i]
        plural, singular, scope_api = _SCOPES[i % 3]
        cond = f'MATCHES("{s}")'
        f14.append((
            f'{verb} {plural} that match "{s}"',
            f'{api}(' + _iter(scope_api, cond) + ')',
        ))
    add("exact_match", f14, complexity=4)

    # ------------------------------------------------------------------
    # F15: anchored before/after insertion.  12 cases.
    # ------------------------------------------------------------------
    f15 = []
    for i in range(12):
        s = ("--", ";", " ", "#", "**", ">>")[i % 6]
        rel, rel_api = (("before", "BEFORE"), ("after", "AFTER"))[i % 2]
        if i < 6:
            w = ("end", "begin", "chapter", "note", "stop", "item")[i]
            f15.append((
                f'insert "{s}" {rel} the word "{w}"',
                f'INSERT(STRING("{s}"), {rel_api}(ANCHORSTR("{w}")), '
                f'{_iter("WORDSCOPE")})',
            ))
        else:
            tok_word, tok_api = _TOKENS[(i - 6) % 6]
            f15.append((
                f'insert "{s}" {rel} every {tok_word[:-1]}',
                f'INSERT(STRING("{s}"), {rel_api}({tok_api}()), '
                f'ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))',
            ))
    add("anchored_insert", f15, complexity=4)

    # ------------------------------------------------------------------
    # F16: dual-token commands (target token + condition token).  10 cases.
    # ------------------------------------------------------------------
    f16 = []
    for i in range(10):
        verb, api = (("delete", "DELETE"), ("count", "COUNT"))[i % 2]
        t1_word, t1_api = _TOKENS[3 + (i % 5)]
        t2_word, t2_api = _TOKENS[i % 3]
        plural, singular, scope_api = _SCOPES[i % 2]
        f16.append((
            f'{verb} the {t1_word} in {plural} containing {t2_word}',
            f'{api}({t1_api}(), '
            f'{_iter(scope_api, f"CONTAINS({t2_api}())")})',
        ))
    add("dual_token", f16, complexity=5)

    validate_dataset(cases, 200)
    return cases


TEXTEDITING_QUERIES: List[QueryCase] = _build()
