"""TextEditing domain (paper Table I, 52 APIs, 200 queries)."""

from functools import lru_cache
from typing import List

from repro.nlp.pruning import PruneConfig
from repro.nlu.synonyms import default_synonyms
from repro.synthesis.domain import Domain
from repro.domains.textediting.apis import TEXTEDITING_APIS
from repro.domains.textediting.grammar import (
    NUMBER_SLOTS,
    QUOTED_SLOTS,
    TEXTEDITING_BNF,
)


#: Ordinal modifiers that mark their head noun as a *token* target
#: ("the first character" selects characters; it does not set the scope).
_ORDINAL_LEMMAS = frozenset({"first", "last", "second", "third", "nth"})

#: Dependency relations that put a noun in scope position ("in every
#: sentence", "of each line" hanging off the verb).
_SCOPE_RELS = frozenset({"obl", "advcl"})


def _rerank_by_syntax(node, dep_graph, entries: List) -> List:
    """Break token-vs-scope candidate ties with syntactic context.

    A noun governed by an ordinal ("the first **word**") means the token
    class; a noun inside a locative phrase attached to the verb ("in every
    **sentence**") means the iteration scope.  Only reorders; the candidate
    set is unchanged.
    """
    from repro.domains.textediting.apis import TEXTEDITING_APIS

    categories = {doc.name: doc.category for doc in TEXTEDITING_APIS}

    has_ordinal_child = any(
        dep_graph.node(e.dep).lemma in _ORDINAL_LEMMAS
        for e in dep_graph.children(node.node_id)
    )
    parent = dep_graph.parent_edge(node.node_id)
    prefer: str = ""
    if has_ordinal_child:
        prefer = "token"
    elif parent is not None and parent.rel in _SCOPE_RELS:
        prefer = "scope"
    if not prefer:
        return entries
    preferred = [e for e in entries if categories.get(e.name) == prefer]
    rest = [e for e in entries if categories.get(e.name) != prefer]
    return preferred + rest


def _build() -> Domain:
    prune = PruneConfig(
        quantifier_lemmas=frozenset({"each", "every", "all", "any"}),
        merge_amod_lemmas=frozenset(),
        drop_root_lemmas=frozenset(),
        # "after"/"before" are position APIs here; keep them past pruning.
        keep_lemmas=frozenset({"after", "before"}),
    )
    synonyms = default_synonyms()
    # "lines that have numbers" intends containment in this domain.
    synonyms.add_group(("contain", "have"))
    return Domain.create(
        name="textediting",
        bnf_source=TEXTEDITING_BNF,
        api_docs=TEXTEDITING_APIS,
        prune_config=prune,
        synonyms=synonyms,
        literal_targets={"quoted": QUOTED_SLOTS, "number": NUMBER_SLOTS},
        description=(
            "A command language that frees Office-suite end-users from "
            "regular expressions, conditionals, and loops (Desai et al.)."
        ),
        candidate_reranker=_rerank_by_syntax,
    )


@lru_cache(maxsize=1)
def _shared() -> Domain:
    return _build()


def build_domain(fresh: bool = False) -> Domain:
    """The TextEditing domain: the process-shared instance by default, a
    private cold-cache instance with ``fresh=True`` (benchmarks, cache
    tests)."""
    return _build() if fresh else _shared()


#: Lets repro.domains.clear_cached_domains drop the shared instance.
build_domain.cache_clear = _shared.cache_clear
