"""The TextEditing DSL grammar (re-creation of Desai et al. [9]).

A command language "that aims to free Office-suite end-users from
understanding syntax and semantics of regular expressions, conditionals, and
loops" (paper Table I): editing commands, string slots, positions, iteration
scopes, occurrence conditions, quantifiers, ordinal selectors, and token
classes.

Design notes (see DESIGN.md):

* every command's arguments hang off the command API via the head-API
  convention, so grammar paths run command -> argument (Fig. 4(a));
* a CGT is a subgraph of the grammar graph and must stay a tree, so any
  non-terminal that two parts of one query may need simultaneously (the
  token classes: a *target* token and a *condition* token; the scopes: a
  sort scope and an iteration scope) gets a **private per-context group**;
  the API terminals themselves stay shared.  The groups are generated
  programmatically below;
* literal slots (``str_val``, ``num_val``, ...) are non-API terminals, each
  used by exactly one production, so distinct query literals bind distinct
  slots;
* ``REPLACE`` takes distinct ``SRCSTRING``/``DSTSTRING`` argument APIs (and
  position anchors use ``ANCHORSTR``) because the same API node cannot
  appear twice in one CGT.
"""

from typing import List

#: Token-class APIs (shared terminals; the per-context groups reference
#: them).  CHARTOKEN additionally takes a numeral slot.
TOKEN_APIS = (
    "NUMBERTOKEN", "WORDTOKEN", "LINETOKEN", "SENTENCETOKEN",
    "COMMATOKEN", "COLONTOKEN", "SEMICOLONTOKEN", "SPACETOKEN",
    "TABTOKEN", "DASHTOKEN", "QUOTETOKEN", "CAPSTOKEN",
)

SCOPE_APIS = (
    "LINESCOPE", "WORDSCOPE", "SENTENCESCOPE", "PARAGRAPHSCOPE",
    "DOCUMENTSCOPE", "CHARSCOPE",
)

#: Contexts that may each hold a token class in one query.
_TOKEN_CONTEXTS = (
    "del", "sel", "cp", "mv", "pr", "cnt", "case", "anchor", "occ", "ord"
)


def _token_group(ctx: str) -> List[str]:
    """Private token group for one context: ``<ctx>_token`` plus its
    CHARTOKEN wrapper rule."""
    alts = list(TOKEN_APIS) + [f"{ctx}_char"]
    return [
        f"{ctx}_token ::= " + " | ".join(alts),
        f"{ctx}_char ::= CHARTOKEN char_num",
    ]


def _build_bnf() -> str:
    lines: List[str] = []
    lines.append(
        "cmd ::= insert_cmd | delete_cmd | replace_cmd | select_cmd"
        " | copy_cmd | move_cmd | print_cmd | count_cmd | case_cmd"
        " | sort_cmd"
    )
    # Commands -----------------------------------------------------------
    lines += [
        "insert_cmd ::= INSERT ins_str ins_pos ins_iter",
        "ins_str ::= string_expr",
        "ins_pos ::= pos_expr",
        "ins_iter ::= iter_expr",
        "delete_cmd ::= DELETE del_target del_iter",
        "del_target ::= del_token | string_expr | ord_token",
        "del_iter ::= iter_expr",
        "replace_cmd ::= REPLACE rep_src rep_dst rep_iter",
        "rep_src ::= SRCSTRING src_val",
        "rep_dst ::= DSTSTRING dst_val",
        "rep_iter ::= iter_expr",
        "select_cmd ::= SELECT sel_target sel_iter",
        "sel_target ::= sel_token | string_expr | ord_token",
        "sel_iter ::= iter_expr",
        "copy_cmd ::= COPY cp_target cp_pos cp_iter",
        "cp_target ::= cp_token | string_expr | ord_token",
        "cp_pos ::= pos_expr",
        "cp_iter ::= iter_expr",
        "move_cmd ::= MOVE mv_target mv_pos mv_iter",
        "mv_target ::= mv_token | string_expr | ord_token",
        "mv_pos ::= pos_expr",
        "mv_iter ::= iter_expr",
        "print_cmd ::= PRINT pr_target pr_iter",
        "pr_target ::= pr_token | string_expr | ord_token",
        "pr_iter ::= iter_expr",
        "count_cmd ::= COUNT cnt_target cnt_iter",
        "cnt_target ::= cnt_token | string_expr | ord_token",
        "cnt_iter ::= iter_expr",
        "case_cmd ::= CAPITALIZE case_target case_iter"
        " | LOWERCASE case_target case_iter",
        "case_target ::= case_token | string_expr | ord_token",
        "case_iter ::= iter_expr",
        "sort_cmd ::= SORT sort_scope sort_iter",
        "sort_scope ::= " + " | ".join(SCOPE_APIS),
        "sort_iter ::= iter_expr",
    ]
    # Strings and positions ----------------------------------------------
    lines += [
        "string_expr ::= STRING str_val",
        "pos_expr ::= START | END | position_expr | after_expr"
        " | before_expr | startfrom_expr | endat_expr",
        "position_expr ::= POSITION num_val",
        "after_expr ::= AFTER pos_anchor",
        "before_expr ::= BEFORE pos_anchor",
        "startfrom_expr ::= STARTFROM from_val",
        "endat_expr ::= ENDAT upto_val",
        "pos_anchor ::= anchor_token | anchor_str",
        "anchor_str ::= ANCHORSTR anchor_val",
    ]
    # Iteration scopes and conditions --------------------------------------
    lines += [
        "iter_expr ::= ITERATIONSCOPE iter_scope iter_cond",
        "iter_scope ::= " + " | ".join(SCOPE_APIS),
        "iter_cond ::= cond_occurrence | ALWAYS",
        "cond_occurrence ::= BCONDOCCURRENCE occ_expr quant_expr",
        "occ_expr ::= contains_expr | startswith_expr | endswith_expr"
        " | matches_expr | EMPTY",
        "contains_expr ::= CONTAINS occ_arg",
        "startswith_expr ::= STARTSWITH occ_arg",
        "endswith_expr ::= ENDSWITH occ_arg",
        "matches_expr ::= MATCHES occ_arg",
        "occ_arg ::= occ_token | occ_val",
        "quant_expr ::= ALL | FIRSTOCC | LASTOCC | nth_expr",
        "nth_expr ::= NTHOCC nth_val",
    ]
    # Ordinal target selectors ---------------------------------------------
    lines += [
        "ord_token ::= first_token | last_token | nth_token",
        "first_token ::= FIRSTTOKEN ord_arg",
        "last_token ::= LASTTOKEN ord_arg",
        "nth_token ::= NTHTOKEN nth_tok ord_arg",
        "ord_arg ::= ord_token_grp",
        "ord_token_grp ::= " + " | ".join(list(TOKEN_APIS) + ["ord_char"]),
        "ord_char ::= CHARTOKEN char_num",
    ]
    # Per-context token groups ---------------------------------------------
    for ctx in ("del", "sel", "cp", "mv", "pr", "cnt", "case", "anchor", "occ"):
        lines += _token_group(ctx)
    return "\n".join(lines) + "\n"


TEXTEDITING_BNF = _build_bnf()

#: Literal (non-API) terminals and the token kinds that may bind to them.
#: Order matters: the list position is the Step-3 rank of the literal
#: endpoint, so e.g. the *find* string of a replace binds ``src_val``
#: before ``dst_val``.
QUOTED_SLOTS = ("str_val", "src_val", "dst_val", "occ_val", "anchor_val")
NUMBER_SLOTS = (
    "num_val", "from_val", "upto_val", "char_num", "nth_val", "nth_tok"
)
