"""ASTMatcher domain (paper Table I: Clang LibASTMatchers, 505 APIs)."""

from functools import lru_cache

from repro.grammar.paths import PathSearchLimits
from repro.nlp.pruning import PruneConfig
from repro.nlu.docs import ApiDoc
from repro.synthesis.domain import Domain
from repro.domains.astmatcher.catalog import full_catalog
from repro.domains.astmatcher.grammar import generate_bnf, literal_slots

#: Command verbs with no API meaning in code search — the query root is
#: dropped and its object ("... expressions") becomes the synthesis root.
_GENERIC_ROOTS = frozenset(
    {
        "find", "search", "list", "show", "get", "locate", "look",
        "give", "return", "report", "collect", "fetch", "retrieve",
        "identify", "detect", "print", "display", "extract", "match",
        "select", "want", "need",
    }
)

#: Adjectives that are part of a matcher's name rather than predicates of
#: their own ("binary operator" -> binaryOperator); true qualifiers such as
#: "virtual" or "static" stay separate nodes (they become is* predicates).
_NAME_ADJECTIVES = frozenset(
    {
        "cxx", "cpp", "binary", "unary", "ternary", "conditional",
        "dynamic", "reinterpret", "implicit", "compound", "imaginary",
        "predefined", "lambda", "nullptr", "builtin", "atomic",
        "elaborated", "designated", "opaque",
        # code keywords retagged JJ before statement nouns ("if statements")
        "if", "for", "while", "do", "switch", "case", "try", "catch",
        "return", "goto", "break", "continue", "new", "delete", "throw",
        "using", "auto",
    }
)


#: Explicit name tokens where the camel-case split misses the everyday
#: wording ("for loops" for forStmt).
_NAME_TOKEN_OVERRIDES = {
    "forStmt": ("for", "loop", "statement"),
    "whileStmt": ("while", "loop", "statement"),
    "doStmt": ("do", "while", "loop", "statement"),
    "cxxForRangeStmt": ("cxx", "range", "for", "loop", "statement"),
    "stmt": ("statement",),
    "expr": ("expression",),
    "decl": ("declaration",),
}


def _build() -> Domain:
    quoted, number = literal_slots()
    docs = [
        ApiDoc(
            name=spec.name,
            description=spec.description,
            name_tokens=_NAME_TOKEN_OVERRIDES.get(spec.name, ()),
            category=spec.kind,
        )
        for spec in full_catalog()
    ]
    prune = PruneConfig(
        # ASTMatcher has no quantifier APIs: "all"/"every" are noise here.
        quantifier_lemmas=frozenset(),
        merge_amod_lemmas=_NAME_ADJECTIVES,
        drop_root_lemmas=_GENERIC_ROOTS,
        keep_lemmas=frozenset(),
        # Light verbs and quantifiers carry no API meaning here; the nouns
        # they govern do.
        drop_lemmas=frozenset(
            {"have", "be", "do", "want", "code",
             "all", "every", "each", "any"}
        ),
    )
    return Domain.create(
        name="astmatcher",
        bnf_source=generate_bnf(),
        api_docs=docs,
        prune_config=prune,
        literal_targets={"quoted": quoted, "number": number},
        description=(
            "Clang LibASTMatchers: a tool for constructing AST matching "
            "expressions to find code patterns of interest."
        ),
        # The matcher grammar is recursive, so simple paths are unbounded;
        # one dependency edge spans about one nesting level, which fits
        # comfortably in 16 grammar-graph nodes.  Shortest paths are found
        # first, so the caps keep the most plausible candidates.
        path_limits=PathSearchLimits(
            max_path_len=16,
            max_paths=32,
            max_paths_per_edge=96,
            max_visits=30_000,
            max_extra_len=4,
        ),
        # The catch-all node matchers add no semantics of their own; they
        # weigh 0 in the smallest-CGT objective, so e.g.
        # hasBody(stmt(hasDescendant(...))) beats routing through a random
        # concrete statement matcher.
        generic_apis=("expr", "stmt", "decl", "type", "qualType"),
    )


@lru_cache(maxsize=1)
def _shared() -> Domain:
    return _build()


def build_domain(fresh: bool = False) -> Domain:
    """The ASTMatcher domain from the catalog: the process-shared instance
    by default, a private cold-cache instance with ``fresh=True``."""
    return _build() if fresh else _shared()


#: Lets repro.domains.clear_cached_domains drop the shared instance.
build_domain.cache_clear = _shared.cache_clear
