"""BNF generation for the ASTMatcher domain.

The grammar is generated from the matcher catalog, mirroring how the real
LibASTMatchers reference is organized:

* the start symbol derives one *node matcher* per AST category
  (``matcher ::= expr_matcher | stmt_matcher | decl_matcher | type_matcher``);
* every node matcher ``X`` owns two **private** trait slots
  (``n_X ::= X X_t1 X_t2``) listing the narrowing/traversal matchers that
  apply to X's category.  The slots are private per matcher — a shared slot
  non-terminal would acquire two parents as soon as a query used traits on
  two different matchers, and a CGT (a subgraph of the grammar graph) must
  stay a tree.  Two slots allow two predicates on one node
  (``forStmt(hasBody(...), hasCondition(...))``);
* every trait ``T`` becomes ``t_T ::= T <args>`` where each inner-matcher
  argument gets a **private** argument group (``T_arg ::= n_... | ...``)
  over the node matchers of the argument's category, and literal arguments
  get a dedicated slot terminal ``<name>_lit`` / ``<name>_num``.

The generated grammar is recursive (matchers nest arbitrarily), which is
exactly what makes the reversed all-path search and DGGT's pruning earn
their keep in this domain.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.domains.astmatcher.catalog import (
    CATEGORIES,
    MatcherSpec,
    full_catalog,
)

#: Literal slots listed first when binding quoted / numeric query tokens
#: (their list order is the Step-3 rank of the literal endpoints).
_PREFERRED_QUOTED = (
    "hasName_lit",
    "hasOperatorName_lit",
    "asString_lit",
    "hasType_lit",
    "matchesName_lit",
)
_PREFERRED_NUMBER = (
    "argumentCountIs_num",
    "parameterCountIs_num",
    "hasSize_num",
)


def generate_bnf() -> str:
    """Render the full ASTMatcher BNF from the catalog."""
    specs = full_catalog()
    nodes = [s for s in specs if s.kind == "node"]
    traits = [s for s in specs if s.kind != "node"]

    by_category: Dict[str, List[MatcherSpec]] = {c: [] for c in CATEGORIES}
    for spec in nodes:
        by_category[spec.categories[0]].append(spec)
    traits_for: Dict[str, List[MatcherSpec]] = {c: [] for c in CATEGORIES}
    for spec in traits:
        for cat in spec.categories:
            traits_for[cat].append(spec)

    lines: List[str] = []
    lines.append(
        "matcher ::= " + " | ".join(f"{c}_matcher" for c in CATEGORIES)
    )
    for cat in CATEGORIES:
        alts = " | ".join(f"n_{s.name}" for s in by_category[cat])
        lines.append(f"{cat}_matcher ::= {alts}")

    # Node matchers: one rule plus two private trait slots each.
    for cat in CATEGORIES:
        trait_alts = " | ".join(f"t_{s.name}" for s in traits_for[cat])
        for spec in by_category[cat]:
            lines.append(f"n_{spec.name} ::= {spec.name} {spec.name}_t1 {spec.name}_t2")
            lines.append(f"{spec.name}_t1 ::= {trait_alts}")
            lines.append(f"{spec.name}_t2 ::= {trait_alts}")

    # Traits: one rule each, with private argument groups.
    for spec in traits:
        symbols: List[str] = [spec.name]
        extra_rules: List[str] = []
        for index, arg in enumerate(spec.args):
            if arg in CATEGORIES or arg == "any":
                group = f"{spec.name}_arg{index if index else ''}"
                pool = (
                    nodes if arg == "any" else by_category[arg]
                )
                alts = " | ".join(f"n_{s.name}" for s in pool)
                extra_rules.append(f"{group} ::= {alts}")
                symbols.append(group)
            elif arg == "string":
                symbols.append(f"{spec.name}_lit")
            elif arg == "number":
                symbols.append(f"{spec.name}_num")
            else:
                raise ValueError(f"unknown arg kind {arg!r} on {spec.name}")
        lines.append(f"t_{spec.name} ::= " + " ".join(symbols))
        lines.extend(extra_rules)

    return "\n".join(lines) + "\n"


def literal_slots() -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(quoted slots, number slots) in binding-preference order."""
    quoted: List[str] = []
    number: List[str] = []
    for spec in full_catalog():
        for arg in spec.args:
            if arg == "string":
                quoted.append(f"{spec.name}_lit")
            elif arg == "number":
                number.append(f"{spec.name}_num")

    def ordered(slots: List[str], preferred: Tuple[str, ...]) -> Tuple[str, ...]:
        head = [s for s in preferred if s in slots]
        tail = sorted(s for s in slots if s not in preferred)
        return tuple(dict.fromkeys(head + tail))

    return ordered(quoted, _PREFERRED_QUOTED), ordered(number, _PREFERRED_NUMBER)
