"""Catalog of Clang ASTMatcher APIs (re-creation of [7], 505 matchers).

The real LibASTMatchers reference organizes matchers into three kinds —
**node matchers** (create matchers for AST node classes), **narrowing
matchers** (predicates on the current node), and **traversal matchers**
(relate the current node to others).  This catalog re-creates that
structure: a core of real matcher names (the ones the paper's example
queries use, plus the common vocabulary), completed with systematic
predicate/traversal variants to reach the reference's scale of 505 entries.

Each entry is a :class:`MatcherSpec`; the grammar in
:mod:`repro.domains.astmatcher.grammar` is generated from these specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Subject categories a matcher applies to.
CATEGORIES = ("expr", "stmt", "decl", "type")


@dataclass(frozen=True)
class MatcherSpec:
    """One ASTMatcher API.

    Attributes
    ----------
    name:
        The matcher function name (camelCase, as written in codelets).
    kind:
        "node" | "narrowing" | "traversal".
    categories:
        For node matchers: the single category the node belongs to.
        For traits: the categories of nodes the trait applies to.
    args:
        Argument kinds: "expr"/"stmt"/"decl"/"type" (an inner matcher of
        that category), "any" (inner matcher of any category), "string" or
        "number" (a literal slot named ``<name>_lit`` / ``<name>_num``).
    description:
        Reference-style one-liner; its content words are match keywords.
    """

    name: str
    kind: str
    categories: Tuple[str, ...]
    args: Tuple[str, ...]
    description: str


def _node(name: str, category: str, description: str) -> MatcherSpec:
    return MatcherSpec(name, "node", (category,), (), description)


def _narrow(name, categories, description, args=()):
    return MatcherSpec(name, "narrowing", tuple(categories), tuple(args), description)


def _traverse(name, categories, description, args=()):
    return MatcherSpec(name, "traversal", tuple(categories), tuple(args), description)


# ----------------------------------------------------------------------
# Node matchers
# ----------------------------------------------------------------------

NODE_MATCHERS: List[MatcherSpec] = [
    # expressions
    _node("expr", "expr", "Matches expressions of any kind."),
    _node("callExpr", "expr", "Matches call expressions."),
    _node("cxxConstructExpr", "expr", "Matches cxx constructor call expressions."),
    _node("cxxMemberCallExpr", "expr", "Matches cxx member function call expressions."),
    _node("cxxOperatorCallExpr", "expr", "Matches overloaded operator call expressions."),
    _node("cxxNewExpr", "expr", "Matches cxx new expressions."),
    _node("cxxDeleteExpr", "expr", "Matches cxx delete expressions."),
    _node("cxxThisExpr", "expr", "Matches cxx this expressions."),
    _node("cxxThrowExpr", "expr", "Matches cxx throw expressions."),
    _node("declRefExpr", "expr", "Matches expressions that refer to declarations."),
    _node("memberExpr", "expr", "Matches member access expressions."),
    _node("arraySubscriptExpr", "expr", "Matches array subscript expressions."),
    _node("binaryOperator", "expr", "Matches binary operator expressions."),
    _node("unaryOperator", "expr", "Matches unary operator expressions."),
    _node("conditionalOperator", "expr", "Matches ternary conditional operator expressions."),
    _node("castExpr", "expr", "Matches cast expressions of any kind."),
    _node("cStyleCastExpr", "expr", "Matches c style cast expressions."),
    _node("cxxStaticCastExpr", "expr", "Matches cxx static cast expressions."),
    _node("cxxDynamicCastExpr", "expr", "Matches cxx dynamic cast expressions."),
    _node("cxxReinterpretCastExpr", "expr", "Matches cxx reinterpret cast expressions."),
    _node("cxxConstCastExpr", "expr", "Matches cxx const cast expressions."),
    _node("implicitCastExpr", "expr", "Matches implicit cast expressions."),
    _node("integerLiteral", "expr", "Matches integer literal expressions."),
    _node("floatLiteral", "expr", "Matches float literal expressions."),
    _node("stringLiteral", "expr", "Matches string literal expressions."),
    _node("characterLiteral", "expr", "Matches character literal expressions."),
    _node("cxxBoolLiteral", "expr", "Matches cxx boolean literal expressions."),
    _node("cxxNullPtrLiteralExpr", "expr", "Matches cxx nullptr literal expressions."),
    _node("initListExpr", "expr", "Matches initializer list expressions."),
    _node("lambdaExpr", "expr", "Matches lambda expressions."),
    _node("parenExpr", "expr", "Matches parenthesized expressions."),
    _node("unaryExprOrTypeTraitExpr", "expr", "Matches sizeof and alignof expressions."),
    _node("compoundLiteralExpr", "expr", "Matches compound literal expressions."),
    _node("cxxDefaultArgExpr", "expr", "Matches cxx default argument expressions."),
    _node("cxxTemporaryObjectExpr", "expr", "Matches cxx temporary object expressions."),
    _node("materializeTemporaryExpr", "expr", "Matches materialized temporary expressions."),
    _node("cxxFunctionalCastExpr", "expr", "Matches cxx functional cast expressions."),
    _node("cxxBindTemporaryExpr", "expr", "Matches cxx bind temporary expressions."),
    _node("exprWithCleanups", "expr", "Matches expressions with cleanups."),
    _node("cxxUnresolvedConstructExpr", "expr", "Matches unresolved cxx construct expressions."),
    _node("cudaKernelCallExpr", "expr", "Matches cuda kernel call expressions."),
    _node("atomicExpr", "expr", "Matches atomic builtin expressions."),
    _node("binaryConditionalOperator", "expr", "Matches binary conditional operator expressions."),
    _node("opaqueValueExpr", "expr", "Matches opaque value expressions."),
    _node("predefinedExpr", "expr", "Matches predefined identifier expressions."),
    _node("addrLabelExpr", "expr", "Matches address of label expressions."),
    _node("stmtExpr", "expr", "Matches gnu statement expressions."),
    _node("imaginaryLiteral", "expr", "Matches imaginary literal expressions."),
    _node("userDefinedLiteral", "expr", "Matches user defined literal expressions."),
    _node("designatedInitExpr", "expr", "Matches designated initializer expressions."),
    # statements
    _node("stmt", "stmt", "Matches statements of any kind."),
    _node("compoundStmt", "stmt", "Matches compound statements."),
    _node("ifStmt", "stmt", "Matches if statements."),
    _node("forStmt", "stmt", "Matches for loop statements."),
    _node("whileStmt", "stmt", "Matches while loop statements."),
    _node("doStmt", "stmt", "Matches do while loop statements."),
    _node("switchStmt", "stmt", "Matches switch statements."),
    _node("switchCase", "stmt", "Matches case and default statements of a switch."),
    _node("caseStmt", "stmt", "Matches case statements."),
    _node("defaultStmt", "stmt", "Matches default statements."),
    _node("breakStmt", "stmt", "Matches break statements."),
    _node("continueStmt", "stmt", "Matches continue statements."),
    _node("returnStmt", "stmt", "Matches return statements."),
    _node("declStmt", "stmt", "Matches declaration statements."),
    _node("nullStmt", "stmt", "Matches null empty statements."),
    _node("gotoStmt", "stmt", "Matches goto statements."),
    _node("labelStmt", "stmt", "Matches label statements."),
    _node("cxxForRangeStmt", "stmt", "Matches cxx range based for loop statements."),
    _node("cxxTryStmt", "stmt", "Matches cxx try blocks."),
    _node("cxxCatchStmt", "stmt", "Matches cxx catch handlers."),
    _node("asmStmt", "stmt", "Matches inline assembly statements."),
    # declarations
    _node("decl", "decl", "Matches declarations of any kind."),
    _node("namedDecl", "decl", "Matches declarations that have a name."),
    _node("varDecl", "decl", "Matches variable declarations."),
    _node("fieldDecl", "decl", "Matches field member declarations."),
    _node("functionDecl", "decl", "Matches function declarations."),
    _node("cxxMethodDecl", "decl", "Matches cxx method declarations."),
    _node("cxxConstructorDecl", "decl", "Matches cxx constructor declarations."),
    _node("cxxDestructorDecl", "decl", "Matches cxx destructor declarations."),
    _node("cxxConversionDecl", "decl", "Matches cxx conversion operator declarations."),
    _node("cxxRecordDecl", "decl", "Matches cxx class and struct declarations."),
    _node("recordDecl", "decl", "Matches class struct and union declarations."),
    _node("classTemplateDecl", "decl", "Matches class template declarations."),
    _node("classTemplateSpecializationDecl", "decl", "Matches class template specialization declarations."),
    _node("functionTemplateDecl", "decl", "Matches function template declarations."),
    _node("enumDecl", "decl", "Matches enum declarations."),
    _node("enumConstantDecl", "decl", "Matches enum constant declarations."),
    _node("parmVarDecl", "decl", "Matches function parameter declarations."),
    _node("typedefDecl", "decl", "Matches typedef declarations."),
    _node("typedefNameDecl", "decl", "Matches typedef name declarations."),
    _node("typeAliasDecl", "decl", "Matches type alias declarations."),
    _node("typeAliasTemplateDecl", "decl", "Matches type alias template declarations."),
    _node("namespaceDecl", "decl", "Matches namespace declarations."),
    _node("namespaceAliasDecl", "decl", "Matches namespace alias declarations."),
    _node("usingDecl", "decl", "Matches using declarations."),
    _node("usingDirectiveDecl", "decl", "Matches using namespace directive declarations."),
    _node("accessSpecDecl", "decl", "Matches access specifier declarations."),
    _node("friendDecl", "decl", "Matches friend declarations."),
    _node("declaratorDecl", "decl", "Matches declarator declarations."),
    _node("linkageSpecDecl", "decl", "Matches extern linkage specification declarations."),
    _node("translationUnitDecl", "decl", "Matches the top translation unit declaration."),
    _node("staticAssertDecl", "decl", "Matches static assert declarations."),
    _node("unresolvedUsingValueDecl", "decl", "Matches unresolved using value declarations."),
    _node("unresolvedUsingTypenameDecl", "decl", "Matches unresolved using typename declarations."),
    _node("valueDecl", "decl", "Matches value declarations."),
    _node("labelDecl", "decl", "Matches label declarations."),
    _node("templateTypeParmDecl", "decl", "Matches template type parameter declarations."),
    _node("nonTypeTemplateParmDecl", "decl", "Matches non type template parameter declarations."),
    _node("indirectFieldDecl", "decl", "Matches indirect field declarations."),
    _node("blockDecl", "decl", "Matches block declarations."),
    _node("decompositionDecl", "decl", "Matches decomposition declarations."),
    # types
    _node("type", "type", "Matches types of any kind."),
    _node("qualType", "type", "Matches qualified types."),
    _node("builtinType", "type", "Matches builtin types."),
    _node("pointerType", "type", "Matches pointer types."),
    _node("referenceType", "type", "Matches reference types."),
    _node("lValueReferenceType", "type", "Matches lvalue reference types."),
    _node("rValueReferenceType", "type", "Matches rvalue reference types."),
    _node("arrayType", "type", "Matches array types."),
    _node("constantArrayType", "type", "Matches constant size array types."),
    _node("incompleteArrayType", "type", "Matches incomplete array types."),
    _node("variableArrayType", "type", "Matches variable length array types."),
    _node("dependentSizedArrayType", "type", "Matches dependent sized array types."),
    _node("functionType", "type", "Matches function types."),
    _node("functionProtoType", "type", "Matches function prototype types."),
    _node("recordType", "type", "Matches record class struct union types."),
    _node("enumType", "type", "Matches enum types."),
    _node("typedefType", "type", "Matches typedef types."),
    _node("templateSpecializationType", "type", "Matches template specialization types."),
    _node("autoType", "type", "Matches auto deduced types."),
    _node("decltypeType", "type", "Matches decltype types."),
    _node("elaboratedType", "type", "Matches elaborated types."),
    _node("parenType", "type", "Matches parenthesized types."),
    _node("atomicType", "type", "Matches atomic types."),
    _node("complexType", "type", "Matches complex number types."),
    _node("memberPointerType", "type", "Matches member pointer types."),
    _node("injectedClassNameType", "type", "Matches injected class name types."),
    _node("unaryTransformType", "type", "Matches unary transform types."),
    _node("substTemplateTypeParmType", "type", "Matches substituted template type parameter types."),
]

# ----------------------------------------------------------------------
# Narrowing matchers (predicates)
# ----------------------------------------------------------------------

ALL = CATEGORIES
DECL = ("decl",)
EXPR = ("expr",)
STMT = ("stmt",)
TYPE = ("type",)

NARROWING_MATCHERS: List[MatcherSpec] = [
    _narrow("hasName", DECL, "Matches named declarations whose name is the given string.", ("string",)),
    _narrow("matchesName", DECL, "Matches named declarations whose name matches the given regular expression.", ("string",)),
    _narrow("hasOperatorName", EXPR, "Matches operator expressions named by the given operator string.", ("string",)),
    _narrow("hasOverloadedOperatorName", ("expr", "decl"), "Matches overloaded operator calls or declarations with the given operator name.", ("string",)),
    _narrow("argumentCountIs", EXPR, "Matches call expressions with the given number of arguments.", ("number",)),
    _narrow("parameterCountIs", DECL, "Matches function declarations with the given number of parameters.", ("number",)),
    _narrow("templateArgumentCountIs", ("decl", "type"), "Matches templates with the given number of template arguments.", ("number",)),
    _narrow("statementCountIs", STMT, "Matches compound statements containing the given number of statements.", ("number",)),
    _narrow("declCountIs", STMT, "Matches declaration statements declaring the given number of declarations.", ("number",)),
    _narrow("hasSize", ("expr", "type"), "Matches nodes with the given size.", ("number",)),
    _narrow("equals", EXPR, "Matches literal expressions equal to the given value.", ("string", "number")),
    _narrow("isDefinition", DECL, "Matches declarations that are definitions."),
    _narrow("isConst", ("decl", "type"), "Matches methods or types that are const."),
    _narrow("isConstexpr", ("decl", "stmt"), "Matches constexpr declarations and if statements."),
    _narrow("isStatic", DECL, "Matches declarations with static storage class."),
    _narrow("isStaticLocal", DECL, "Matches static local variable declarations."),
    _narrow("isVirtual", DECL, "Matches method declarations that are virtual."),
    _narrow("isVirtualAsWritten", DECL, "Matches methods written with the virtual keyword."),
    _narrow("isPure", DECL, "Matches pure virtual method declarations."),
    _narrow("isOverride", DECL, "Matches method declarations marked override."),
    _narrow("isFinal", DECL, "Matches declarations marked final."),
    _narrow("isPublic", DECL, "Matches declarations with public access."),
    _narrow("isPrivate", DECL, "Matches declarations with private access."),
    _narrow("isProtected", DECL, "Matches declarations with protected access."),
    _narrow("isImplicit", DECL, "Matches declarations added implicitly by the compiler."),
    _narrow("isExplicit", DECL, "Matches constructors and conversions marked explicit."),
    _narrow("isDefaulted", DECL, "Matches functions that are defaulted."),
    _narrow("isDeleted", DECL, "Matches functions that are deleted."),
    _narrow("isNoThrow", DECL, "Matches functions with a non throwing exception specification."),
    _narrow("isInline", DECL, "Matches function and namespace declarations marked inline."),
    _narrow("isExternC", DECL, "Matches declarations with extern c linkage."),
    _narrow("isMain", DECL, "Matches the main function declaration."),
    _narrow("isTemplateInstantiation", DECL, "Matches template instantiations of function class or static member."),
    _narrow("isInstantiated", DECL, "Matches declarations inside a template instantiation."),
    _narrow("isInstantiationDependent", EXPR, "Matches expressions that are instantiation dependent."),
    _narrow("isExpansionInMainFile", ALL, "Matches nodes expanded in the main file."),
    _narrow("isExpansionInSystemHeader", ALL, "Matches nodes expanded in a system header."),
    _narrow("isExpandedFromMacro", ALL, "Matches nodes expanded from the named macro.", ("string",)),
    _narrow("isInteger", TYPE, "Matches integer types."),
    _narrow("isSignedInteger", TYPE, "Matches signed integer types."),
    _narrow("isUnsignedInteger", TYPE, "Matches unsigned integer types."),
    _narrow("isAnyPointer", TYPE, "Matches pointer types including object pointers."),
    _narrow("isAnyCharacter", TYPE, "Matches character types."),
    _narrow("isConstQualified", TYPE, "Matches const qualified types."),
    _narrow("isVolatileQualified", TYPE, "Matches volatile qualified types."),
    _narrow("isClass", ("decl", "type"), "Matches class declarations or class types."),
    _narrow("isStruct", ("decl", "type"), "Matches struct declarations or struct types."),
    _narrow("isUnion", ("decl", "type"), "Matches union declarations or union types."),
    _narrow("isEnum", ("decl", "type"), "Matches enum declarations or enum types."),
    _narrow("isArrow", EXPR, "Matches member expressions accessed through arrow."),
    _narrow("isAssignmentOperator", EXPR, "Matches assignment operator expressions."),
    _narrow("isComparisonOperator", EXPR, "Matches comparison operator expressions."),
    _narrow("isListInitialization", EXPR, "Matches construct expressions using list initialization."),
    _narrow("isCatchAll", STMT, "Matches catch handlers that catch everything."),
    _narrow("isImplicitCast", EXPR, "Matches casts inserted implicitly by the compiler."),
    _narrow("hasCastKind", EXPR, "Matches cast expressions with the given cast kind.", ("string",)),
    _narrow("isWritten", DECL, "Matches constructor initializers written in source."),
    _narrow("isBaseInitializer", DECL, "Matches constructor initializers that initialize a base class."),
    _narrow("isMemberInitializer", DECL, "Matches constructor initializers that initialize a member field."),
    _narrow("isCopyConstructor", DECL, "Matches copy constructor declarations."),
    _narrow("isMoveConstructor", DECL, "Matches move constructor declarations."),
    _narrow("isDefaultConstructor", DECL, "Matches default constructor declarations."),
    _narrow("isCopyAssignmentOperator", DECL, "Matches copy assignment operator declarations."),
    _narrow("isMoveAssignmentOperator", DECL, "Matches move assignment operator declarations."),
    _narrow("isUserProvided", DECL, "Matches functions provided by the user."),
    _narrow("isVariadic", DECL, "Matches variadic function declarations."),
    _narrow("isLambda", DECL, "Matches records that are lambdas."),
    _narrow("isBitField", DECL, "Matches field declarations that are bit fields."),
    _narrow("hasBitWidth", DECL, "Matches bit fields with the given bit width.", ("number",)),
    _narrow("isAnonymous", DECL, "Matches anonymous namespace or record declarations."),
    _narrow("isInStdNamespace", DECL, "Matches declarations in the std namespace."),
    _narrow("isInAnonymousNamespace", DECL, "Matches declarations in an anonymous namespace."),
    _narrow("hasExternalFormalLinkage", DECL, "Matches declarations with external formal linkage."),
    _narrow("hasAutomaticStorageDuration", DECL, "Matches variables with automatic storage duration."),
    _narrow("hasStaticStorageDuration", DECL, "Matches variables with static storage duration."),
    _narrow("hasThreadStorageDuration", DECL, "Matches variables with thread storage duration."),
    _narrow("hasGlobalStorage", DECL, "Matches variable declarations with global storage."),
    _narrow("hasLocalStorage", DECL, "Matches variable declarations with local storage."),
    _narrow("hasTrailingReturn", DECL, "Matches function declarations with a trailing return type."),
    _narrow("hasDynamicExceptionSpec", DECL, "Matches functions with a dynamic exception specification."),
    _narrow("isScoped", DECL, "Matches scoped enum declarations."),
    _narrow("isExpr", STMT, "Matches statements that are expressions."),
]

# ----------------------------------------------------------------------
# Traversal matchers
# ----------------------------------------------------------------------

TRAVERSAL_MATCHERS: List[MatcherSpec] = [
    _traverse("has", ALL, "Matches nodes with a direct child matching the inner matcher.", ("any",)),
    _traverse("hasDescendant", ALL, "Matches nodes with a descendant matching the inner matcher.", ("any",)),
    _traverse("hasAncestor", ALL, "Matches nodes with an ancestor matching the inner matcher.", ("any",)),
    _traverse("hasParent", ALL, "Matches nodes whose parent matches the inner matcher.", ("any",)),
    _traverse("forEach", ALL, "Matches each direct child matching the inner matcher.", ("any",)),
    _traverse("forEachDescendant", ALL, "Matches each descendant matching the inner matcher.", ("any",)),
    _traverse("hasArgument", EXPR, "Matches call or construct expressions whose argument matches the inner matcher.", ("expr",)),
    _traverse("hasAnyArgument", EXPR, "Matches call or construct expressions where any argument matches the inner matcher.", ("expr",)),
    _traverse("callee", EXPR, "Matches call expressions whose callee declaration matches the inner matcher.", ("decl",)),
    _traverse("hasDeclaration", ("expr", "type"), "Matches nodes that declare or refer to a declaration matching the inner matcher.", ("decl",)),
    _traverse("hasType", ("expr", "decl"), "Matches expressions or declarations whose type matches the inner matcher or type string.", ("type", "string")),
    _traverse("hasBody", ("stmt", "decl"), "Matches loops or functions whose body matches the inner matcher.", ("stmt",)),
    _traverse("hasCondition", ("stmt", "expr"), "Matches if while for or conditional operators whose condition matches the inner matcher.", ("expr",)),
    _traverse("hasInitializer", ("decl", "expr"), "Matches variable declarations whose initializer matches the inner matcher.", ("expr",)),
    _traverse("hasInit", STMT, "Matches for loops whose init statement matches the inner matcher.", ("stmt",)),
    _traverse("hasIncrement", STMT, "Matches for loops whose increment matches the inner matcher.", ("expr",)),
    _traverse("hasLoopInit", STMT, "Matches for loops whose loop init matches the inner matcher.", ("stmt",)),
    _traverse("hasLoopVariable", STMT, "Matches range for loops whose loop variable matches the inner matcher.", ("decl",)),
    _traverse("hasRangeInit", STMT, "Matches range for loops whose range init matches the inner matcher.", ("expr",)),
    _traverse("hasThen", STMT, "Matches if statements whose then branch matches the inner matcher.", ("stmt",)),
    _traverse("hasElse", STMT, "Matches if statements whose else branch matches the inner matcher.", ("stmt",)),
    _traverse("hasLHS", EXPR, "Matches operator expressions whose left hand side matches the inner matcher.", ("expr",)),
    _traverse("hasRHS", EXPR, "Matches operator expressions whose right hand side matches the inner matcher.", ("expr",)),
    _traverse("hasEitherOperand", EXPR, "Matches operator expressions where either operand matches the inner matcher.", ("expr",)),
    _traverse("hasUnaryOperand", EXPR, "Matches unary operator expressions whose operand matches the inner matcher.", ("expr",)),
    _traverse("hasSourceExpression", EXPR, "Matches cast expressions whose source expression matches the inner matcher.", ("expr",)),
    _traverse("hasObjectExpression", EXPR, "Matches member expressions whose object expression matches the inner matcher.", ("expr",)),
    _traverse("on", EXPR, "Matches member call expressions invoked on an object matching the inner matcher.", ("expr",)),
    _traverse("onImplicitObjectArgument", EXPR, "Matches member calls whose implicit object argument matches the inner matcher.", ("expr",)),
    _traverse("thisPointerType", EXPR, "Matches member calls whose this pointer type matches the inner matcher.", ("type",)),
    _traverse("hasMethod", DECL, "Matches class declarations that have a method matching the inner matcher.", ("decl",)),
    _traverse("forField", DECL, "Matches constructor initializers that initialize a field matching the inner matcher.", ("decl",)),
    _traverse("hasAnyParameter", DECL, "Matches functions where any parameter matches the inner matcher.", ("decl",)),
    _traverse("hasParameter", DECL, "Matches functions whose given parameter matches the inner matcher.", ("decl",)),
    _traverse("returns", DECL, "Matches function declarations whose return type matches the inner matcher.", ("type",)),
    _traverse("hasReturnValue", STMT, "Matches return statements whose return value matches the inner matcher.", ("expr",)),
    _traverse("isDerivedFrom", DECL, "Matches class declarations derived from a class matching the inner matcher or name.", ("decl", "string")),
    _traverse("isSameOrDerivedFrom", DECL, "Matches classes equal to or derived from a class matching the inner matcher or name.", ("decl", "string")),
    _traverse("isDirectlyDerivedFrom", DECL, "Matches classes directly derived from a class matching the inner matcher or name.", ("decl", "string")),
    _traverse("hasUnderlyingType", TYPE, "Matches typedef types whose underlying type matches the inner matcher.", ("type",)),
    _traverse("pointee", TYPE, "Matches pointer or reference types whose pointee matches the inner matcher.", ("type",)),
    _traverse("hasElementType", TYPE, "Matches array or complex types whose element type matches the inner matcher.", ("type",)),
    _traverse("hasValueType", TYPE, "Matches atomic types whose value type matches the inner matcher.", ("type",)),
    _traverse("hasDeducedType", TYPE, "Matches auto types whose deduced type matches the inner matcher.", ("type",)),
    _traverse("innerType", TYPE, "Matches paren types whose inner type matches the inner matcher.", ("type",)),
    _traverse("namesType", TYPE, "Matches elaborated types that name a type matching the inner matcher.", ("type",)),
    _traverse("hasCanonicalType", TYPE, "Matches qualified types whose canonical type matches the inner matcher.", ("type",)),
    _traverse("references", ("type", "decl"), "Matches reference types referencing a type matching the inner matcher.", ("type",)),
    _traverse("pointsTo", ("type", "decl"), "Matches pointer types pointing to a type matching the inner matcher.", ("type", "decl")),
    _traverse("forEachSwitchCase", STMT, "Matches each switch case of a switch statement matching the inner matcher.", ("stmt",)),
    _traverse("forEachConstructorInitializer", DECL, "Matches each constructor initializer matching the inner matcher.", ("decl",)),
    _traverse("hasAnyConstructorInitializer", DECL, "Matches constructors where any initializer matches the inner matcher.", ("decl",)),
    _traverse("withInitializer", DECL, "Matches constructor initializers whose initializer expression matches the inner matcher.", ("expr",)),
    _traverse("member", EXPR, "Matches member expressions whose member declaration matches the inner matcher.", ("decl",)),
    _traverse("hasIndex", EXPR, "Matches array subscript expressions whose index matches the inner matcher.", ("expr",)),
    _traverse("hasBase", EXPR, "Matches array subscript expressions whose base matches the inner matcher.", ("expr",)),
    _traverse("hasSingleDecl", STMT, "Matches declaration statements with a single declaration matching the inner matcher.", ("decl",)),
    _traverse("containsDeclaration", STMT, "Matches declaration statements containing a declaration matching the inner matcher.", ("decl",)),
    _traverse("hasAnySubstatement", STMT, "Matches compound statements where any substatement matches the inner matcher.", ("stmt",)),
    _traverse("hasAnyUsingShadowDecl", DECL, "Matches using declarations with a shadow declaration matching the inner matcher.", ("decl",)),
    _traverse("hasTypeLoc", ("expr", "decl"), "Matches nodes whose type location matches the inner matcher.", ("type",)),
    _traverse("ignoringImpCasts", EXPR, "Matches expressions ignoring implicit casts around the inner matcher.", ("expr",)),
    _traverse("ignoringParenCasts", EXPR, "Matches expressions ignoring parentheses and casts around the inner matcher.", ("expr",)),
    _traverse("ignoringParenImpCasts", EXPR, "Matches expressions ignoring parentheses and implicit casts.", ("expr",)),
    _traverse("ignoringImplicit", EXPR, "Matches expressions ignoring implicit nodes around the inner matcher.", ("expr",)),
    _traverse("asString", TYPE, "Matches types whose string representation equals the given string.", ("string",)),
    _traverse("hasSpecializedTemplate", DECL, "Matches specializations whose template matches the inner matcher.", ("decl",)),
    _traverse("hasAnyTemplateArgument", ("decl", "type"), "Matches templates where any template argument matches the inner matcher.", ("type",)),
    _traverse("hasTemplateArgument", ("decl", "type"), "Matches templates whose given template argument matches the inner matcher.", ("type",)),
    _traverse("refersToType", TYPE, "Matches template arguments that refer to a type matching the inner matcher.", ("type",)),
    _traverse("refersToDeclaration", DECL, "Matches template arguments that refer to a declaration matching the inner matcher.", ("decl",)),
    _traverse("hasQualifier", ("expr", "decl"), "Matches nodes whose nested name qualifier matches the inner matcher.", ("decl",)),
    _traverse("throughUsingDecl", EXPR, "Matches declaration references realized through a using declaration.", ("decl",)),
    _traverse("to", EXPR, "Matches declaration references whose referenced declaration matches the inner matcher.", ("decl",)),
]


# ----------------------------------------------------------------------
# Systematic completion to the reference's 505 entries
# ----------------------------------------------------------------------

#: Attribute-style predicates generated per declaration family; these mirror
#: the long tail of `is<Property>` narrowing matchers in the real reference.
_GENERATED_PROPERTIES = [
    "Aligned", "AllocSize", "AlwaysInline", "Artificial", "Blocks",
    "Capability", "Cleanup", "Cold", "Common", "Constructor", "Consumable",
    "Convergent", "Deprecated", "Destructor", "Disabled", "Dllexport",
    "Dllimport", "Empty", "Error", "Exclusive", "Flatten", "Guarded",
    "Hidden", "Hot", "Interrupt", "Leaf", "Likely", "Lockable",
    "Malloc", "MayAlias", "Naked", "NoAlias", "NoBuiltin", "NoCommon",
    "NoDebug", "NoDuplicate", "NoEscape", "NoInline", "NoInstrument",
    "NoMerge", "NoProfile", "NoSanitize", "NoSplitStack", "NoStackProtector",
    "NoUnique", "Nodiscard", "Noreturn", "Overloadable", "Owner",
    "Packed", "Pascal", "Pointer", "Preserve", "Pupgraded", "Reinitializes",
    "Restrict", "Retain", "Scoped2", "Section", "Selectany", "Sentinel",
    "Shared", "Speculative", "StrictFlex", "Suppress", "Target",
    "TestTypestate", "ThreadLocal", "Transparent", "TrivialAbi", "Unavailable",
    "Uninitialized", "Unlikely", "Unused", "Used", "Uuid", "Vectorcall",
    "Visibility", "WarnUnused", "Weak", "WeakRef", "ZeroCall",
]

_GENERATED_FAMILIES = [
    ("Attr", DECL, "declarations"),
    ("TypeAttr", TYPE, "types"),
    ("StmtAttr", STMT, "statements"),
]


def _generated_specs(target_total: int) -> List[MatcherSpec]:
    """Deterministically generate `is<Prop>Attr`-style predicates until the
    catalog reaches ``target_total`` entries."""
    base = len(NODE_MATCHERS) + len(NARROWING_MATCHERS) + len(TRAVERSAL_MATCHERS)
    needed = target_total - base
    if needed < 0:
        raise ValueError(
            f"catalog already larger than target: {base} > {target_total}"
        )
    out: List[MatcherSpec] = []
    idx = 0
    while len(out) < needed:
        prop = _GENERATED_PROPERTIES[idx % len(_GENERATED_PROPERTIES)]
        suffix, cats, noun = _GENERATED_FAMILIES[idx // len(_GENERATED_PROPERTIES)]
        name = f"is{prop}{suffix}"
        out.append(
            _narrow(
                name,
                cats,
                f"Matches {noun} carrying the {prop.lower()} attribute.",
            )
        )
        idx += 1
    return out


#: The paper's Table I reports 505 APIs for the ASTMatcher domain.
TARGET_TOTAL = 505


def full_catalog() -> List[MatcherSpec]:
    """The complete, validated catalog (exactly ``TARGET_TOTAL`` entries,
    unique names)."""
    specs = (
        NODE_MATCHERS
        + NARROWING_MATCHERS
        + TRAVERSAL_MATCHERS
        + _generated_specs(TARGET_TOTAL)
    )
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate matcher names: {dupes}")
    return specs


def catalog_by_kind() -> Dict[str, List[MatcherSpec]]:
    out: Dict[str, List[MatcherSpec]] = {"node": [], "narrowing": [], "traversal": []}
    for spec in full_catalog():
        out[spec.kind].append(spec)
    return out
