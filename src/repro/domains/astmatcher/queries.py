"""ASTMatcher query set: 100 queries with authored ground truths.

Re-creation of the 100-query Clang ASTMatcher set of HISyn [34] (see
DESIGN.md, "Substitutions").  The families mirror the paper's published
examples (Table I rows 5-7) and the common code-search intents the
LibASTMatchers reference motivates.  Ground truths are authored from
intended semantics; synthesis mistakes count against accuracy.
"""

from __future__ import annotations

from typing import List

from repro.eval.dataset import QueryCase, make_cases, validate_dataset


def _build() -> List[QueryCase]:
    cases: List[QueryCase] = []
    n = 1

    def add(family, entries, complexity):
        nonlocal n
        cases.extend(make_cases(family, entries, n, "ast", complexity))
        n += len(entries)

    # ------------------------------------------------------------------
    # A1: named declarations.  14 cases.
    # ------------------------------------------------------------------
    a1 = []
    a1_specs = (
        ("functions", "functionDecl", "main"),
        ("functions", "functionDecl", "compute"),
        ("cxx methods", "cxxMethodDecl", "PI"),
        ("cxx methods", "cxxMethodDecl", "size"),
        ("variable declarations", "varDecl", "counter"),
        ("field declarations", "fieldDecl", "data"),
        ("namespace declarations", "namespaceDecl", "std"),
        ("enum declarations", "enumDecl", "Color"),
        ("class declarations", "recordDecl", "Widget"),
        ("parameter declarations", "parmVarDecl", "argc"),
        ("typedef declarations", "typedefDecl", "size_type"),
        ("cxx constructor declarations", "cxxConstructorDecl", "Vector"),
        ("function template declarations", "functionTemplateDecl", "max"),
        ("label declarations", "labelDecl", "retry"),
    )
    for i, (noun, api, name) in enumerate(a1_specs):
        verb = ("find", "search for", "list", "show")[i % 4]
        a1.append((
            f'{verb} {noun} named "{name}"',
            f'{api}(hasName("{name}"))',
        ))
    add("named_decl", a1, complexity=3)

    # ------------------------------------------------------------------
    # A2: operators by name (paper example 7).  8 cases.
    # ------------------------------------------------------------------
    a2 = []
    for i, op in enumerate(("*", "+", "==", "&&", "<", "-", "%", "|")):
        kind, api = (("binary operators", "binaryOperator"),
                     ("unary operators", "unaryOperator"))[i % 2]
        if i % 2:
            op = ("!", "~", "-", "++")[(i // 2) % 4]
        verb = ("list all", "find", "search for", "show all")[i % 4]
        a2.append((
            f'{verb} {kind} named "{op}"',
            f'{("binaryOperator", "unaryOperator")[i % 2]}'
            f'(hasOperatorName("{op}"))',
        ))
    add("operator_name", a2, complexity=3)

    # ------------------------------------------------------------------
    # A3: call arguments by literal kind (paper example 6).  8 cases.
    # ------------------------------------------------------------------
    a3 = []
    a3_lits = (
        ("a float literal", "floatLiteral"),
        ("an integer literal", "integerLiteral"),
        ("a string literal", "stringLiteral"),
        ("a character literal", "characterLiteral"),
    )
    for i in range(8):
        lit_words, lit_api = a3_lits[i % 4]
        subj, subj_api = (
            ("call expressions", "callExpr"),
            ("cxx constructor expressions", "cxxConstructExpr"),
        )[i // 4]
        a3.append((
            f'search for {subj} whose argument is {lit_words}',
            f'{subj_api}(hasArgument({lit_api}()))',
        ))
    add("call_argument", a3, complexity=4)

    # ------------------------------------------------------------------
    # A4: nested declaration queries (paper example 5).  6 cases.
    # ------------------------------------------------------------------
    a4 = []
    a4_specs = (
        ("cxx constructor expressions", "cxxConstructExpr",
         "cxx method", "cxxMethodDecl", "PI"),
        ("cxx constructor expressions", "cxxConstructExpr",
         "cxx method", "cxxMethodDecl", "area"),
        ("call expressions", "callExpr",
         "function", "functionDecl", "malloc"),
        ("call expressions", "callExpr",
         "function", "functionDecl", "printf"),
        ("declaration reference expressions", "declRefExpr",
         "variable", "varDecl", "errno"),
        ("member expressions", "memberExpr",
         "field", "fieldDecl", "next"),
    )
    for i, (subj, subj_api, inner, inner_api, name) in enumerate(a4_specs):
        verb = ("find", "search for")[i % 2]
        if i < 2:
            a4.append((
                f'{verb} {subj} which declare a {inner} named "{name}"',
                f'{subj_api}(hasDeclaration({inner_api}(hasName("{name}"))))',
            ))
        elif i < 4:
            a4.append((
                f'{verb} {subj} whose callee is a {inner} named "{name}"',
                f'{subj_api}(callee({inner_api}(hasName("{name}"))))',
            ))
        else:
            a4.append((
                f'{verb} {subj} whose declaration is a {inner} named "{name}"',
                f'{subj_api}(hasDeclaration({inner_api}(hasName("{name}"))))',
            ))
    add("nested_declaration", a4, complexity=5)

    # ------------------------------------------------------------------
    # A5: typed declarations.  8 cases.
    # ------------------------------------------------------------------
    a5 = []
    for i, ty in enumerate(
        ("int", "float", "double", "char", "bool", "long", "unsigned", "short")
    ):
        subj, api = (
            ("variable declarations", "varDecl"),
            ("field declarations", "fieldDecl"),
        )[i % 2]
        verb = ("match", "find", "list", "search for")[i % 4]
        a5.append((
            f'{verb} {subj} of type "{ty}"',
            f'{api}(hasType("{ty}"))',
        ))
    add("typed_decl", a5, complexity=4)

    # ------------------------------------------------------------------
    # A6: statements by condition.  8 cases.
    # ------------------------------------------------------------------
    a6 = []
    for i in range(8):
        subj, api = (
            ("if statements", "ifStmt"),
            ("while loops", "whileStmt"),
            ("for loops", "forStmt"),
            ("conditional operators", "conditionalOperator"),
        )[i % 4]
        inner, inner_api = (
            ("a binary operator", "binaryOperator"),
            ("a call expression", "callExpr"),
        )[i // 4]
        a6.append((
            f'list {subj} whose condition is {inner}',
            f'{api}(hasCondition({inner_api}()))',
        ))
    add("condition", a6, complexity=4)

    # ------------------------------------------------------------------
    # A7: loops/functions whose body contains something.  8 cases.
    # ------------------------------------------------------------------
    a7 = []
    for i in range(8):
        subj, api = (
            ("for loops", "forStmt"),
            ("while loops", "whileStmt"),
        )[i % 2]
        inner, inner_api = (
            ("a call expression", "callExpr"),
            ("a return statement", "returnStmt"),
            ("an if statement", "ifStmt"),
            ("a break statement", "breakStmt"),
        )[i % 4]
        if i < 4:
            a7.append((
                f'find {subj} that have a body containing {inner}',
                f'{api}(hasBody(stmt(hasDescendant({inner_api}()))))',
            ))
        else:
            a7.append((
                f'find {subj} containing {inner}',
                f'{api}(hasDescendant({inner_api}()))',
            ))
    add("body_contains", a7, complexity=5)

    # ------------------------------------------------------------------
    # A8: qualifier predicates.  8 cases.
    # ------------------------------------------------------------------
    a8 = []
    a8_specs = (
        ("virtual", "isVirtual", "cxx methods", "cxxMethodDecl"),
        ("pure", "isPure", "cxx methods", "cxxMethodDecl"),
        ("static", "isStatic", "variable declarations", "varDecl"),
        ("constexpr", "isConstexpr", "variable declarations", "varDecl"),
        ("inline", "isInline", "functions", "functionDecl"),
        ("variadic", "isVariadic", "functions", "functionDecl"),
        ("deleted", "isDeleted", "functions", "functionDecl"),
        ("defaulted", "isDefaulted", "functions", "functionDecl"),
    )
    for i, (adj, pred, noun, api) in enumerate(a8_specs):
        verb = ("find", "list all", "show", "search for")[i % 4]
        a8.append((
            f'{verb} {adj} {noun}',
            f'{api}({pred}())',
        ))
    add("qualifier", a8, complexity=2)

    # ------------------------------------------------------------------
    # A9: derived classes.  6 cases.
    # ------------------------------------------------------------------
    a9 = []
    for i, base in enumerate(
        ("Base", "Shape", "Widget", "Node", "Visitor", "Exception")
    ):
        verb = ("find", "list", "search for")[i % 3]
        a9.append((
            f'{verb} class declarations derived from "{base}"',
            f'recordDecl(isDerivedFrom("{base}"))',
        ))
    add("derived_from", a9, complexity=3)

    # ------------------------------------------------------------------
    # A10: arity predicates.  6 cases.
    # ------------------------------------------------------------------
    a10 = []
    for i in range(6):
        if i % 2 == 0:
            a10.append((
                f'find functions with {i + 1} parameters',
                f'functionDecl(parameterCountIs("{i + 1}"))',
            ))
        else:
            a10.append((
                f'find call expressions with {i + 1} arguments',
                f'callExpr(argumentCountIs("{i + 1}"))',
            ))
    add("arity", a10, complexity=3)

    # ------------------------------------------------------------------
    # A11: return types.  6 cases.
    # ------------------------------------------------------------------
    a11 = []
    for i, (ty_words, ty_api) in enumerate((
        ("a pointer type", "pointerType"),
        ("a reference type", "referenceType"),
        ("a builtin type", "builtinType"),
        ("an enum type", "enumType"),
        ("an auto type", "autoType"),
        ("a record type", "recordType"),
    )):
        a11.append((
            f'find functions that return {ty_words}',
            f'functionDecl(returns({ty_api}()))',
        ))
    add("return_type", a11, complexity=4)

    # ------------------------------------------------------------------
    # A12: initializers.  6 cases.
    # ------------------------------------------------------------------
    a12 = []
    for i, (lit_words, lit_api) in enumerate((
        ("an integer literal", "integerLiteral"),
        ("a float literal", "floatLiteral"),
        ("a string literal", "stringLiteral"),
        ("a lambda expression", "lambdaExpr"),
        ("a cxx new expression", "cxxNewExpr"),
        ("an initializer list expression", "initListExpr"),
    )):
        verb = ("match", "find")[i % 2]
        a12.append((
            f'{verb} variable declarations whose initializer is {lit_words}',
            f'varDecl(hasInitializer({lit_api}()))',
        ))
    add("initializer", a12, complexity=4)

    # ------------------------------------------------------------------
    # A13: bare node matchers.  8 cases.
    # ------------------------------------------------------------------
    a13 = []
    a13_specs = (
        ("lambda expressions", "lambdaExpr"),
        ("cxx throw expressions", "cxxThrowExpr"),
        ("cxx new expressions", "cxxNewExpr"),
        ("cxx delete expressions", "cxxDeleteExpr"),
        ("goto statements", "gotoStmt"),
        ("switch statements", "switchStmt"),
        ("cxx try statements", "cxxTryStmt"),
        ("cxx catch statements", "cxxCatchStmt"),
    )
    for i, (noun, api) in enumerate(a13_specs):
        verb = ("find all", "list", "show all", "search for")[i % 4]
        a13.append((f'{verb} {noun}', f'{api}()'))
    add("bare_node", a13, complexity=1)

    validate_dataset(cases, 100)
    return cases


ASTMATCHER_QUERIES: List[QueryCase] = _build()
