"""Clients for a running ``repro serve`` instance.

:class:`HttpClient` speaks to the HTTP front end over ``http.client``
(stdlib).  It keeps one persistent keep-alive connection per calling
thread and reuses it across requests *and* retries (a retry of an
``overloaded`` answer must not pay a fresh TCP handshake to a server
that is already loaded); a connection that went stale between requests
is replaced transparently, once.  Call :meth:`HttpClient.close` — or
use the client as a context manager — to release the sockets.
:class:`StdioClient` owns a ``repro serve --stdio`` child process and
speaks the JSON-lines protocol.  Both raise :class:`ServerError` —
carrying the server's stable error code — when the server answers with a
structured error, so callers get ``timeout`` / ``unknown_domain`` /
``overloaded`` as data instead of parsing messages.  A 429 carries the
scheduler's backpressure hint as :attr:`ServerError.retry_after_ms`;
``HttpClient(retries=N)`` opts into honoring it automatically for
``overloaded`` answers (and only those — other errors are not load
transients, so retrying them just repeats the failure).

Used by the test suite, the CI smoke job, and
``benchmarks/test_server_latency.py``; also the reference implementation
for anyone integrating an editor or gateway (see docs/serving.md).
"""

from __future__ import annotations

import http.client
import json
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["ServerError", "HttpClient", "StdioClient"]


def _examples_to_wire(examples: Any) -> List[Dict[str, str]]:
    """Render caller-friendly examples (IOExample records, (input, output)
    pairs, or {"input", "output"} mappings) into the wire array shape."""
    from repro.verify.examples import normalize_examples

    normalized = normalize_examples(examples)
    return [ex.to_json() for ex in (normalized or ())]


class ServerError(ReproError):
    """A structured error answered by the server.

    ``code`` is the stable wire code (:data:`repro.errors.ERROR_CODES` +
    the serving codes); ``http_status`` is 0 for stdio transports;
    ``payload`` is the full response body.  For ``overloaded`` answers
    from a queueing server, ``retry_after_ms`` is the scheduler's
    backpressure hint (how long until a queue slot likely frees up);
    None when the server did not supply one.
    """

    def __init__(self, code: str, message: str, *, http_status: int = 0,
                 payload: Optional[Dict[str, Any]] = None,
                 retry_after_ms: Optional[int] = None):
        self.code = code
        self.http_status = http_status
        self.payload = payload or {}
        self.retry_after_ms = retry_after_ms
        super().__init__(f"[{code}] {message}")


def _raise_for_error(payload: Dict[str, Any], status: int = 0) -> None:
    error = payload.get("error")
    if error:
        retry_after_ms = error.get("retry_after_ms")
        if not isinstance(retry_after_ms, (int, float)) or isinstance(
            retry_after_ms, bool
        ):
            retry_after_ms = None
        raise ServerError(
            error.get("code", "error"),
            error.get("message", "unknown server error"),
            http_status=status,
            payload=payload,
            retry_after_ms=(
                None if retry_after_ms is None else int(retry_after_ms)
            ),
        )


class HttpClient:
    """Minimal client for the HTTP front end.

    One persistent keep-alive connection per calling thread, reused
    across requests and retries; ``keep_alive=False`` restores the old
    connection-per-call behaviour.  ``retries``/``backoff`` opt into
    automatic retry of ``overloaded`` (429) answers only: each retry
    sleeps the server's ``retry_after_ms`` hint when present, else
    ``backoff * 2**attempt`` seconds.  The default (``retries=0``)
    preserves fail-fast behaviour.  :meth:`close` (or ``with``)
    releases every thread's socket.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, *,
                 connect_timeout: float = 10.0, retries: int = 0,
                 backoff: float = 0.05, keep_alive: bool = True):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.retries = retries
        self.backoff = backoff
        self.keep_alive = keep_alive
        self._local = threading.local()
        self._lock = threading.Lock()
        self._connections: List[http.client.HTTPConnection] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Connection management

    def _connection(self, timeout: float) -> http.client.HTTPConnection:
        """This thread's persistent connection, created on first use."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout
            )
            self._local.conn = conn
            with self._lock:
                self._connections.append(conn)
        # The timeout is per-request, not per-connection: refresh it on
        # the object (used at connect time) and any live socket.
        conn.timeout = timeout
        if conn.sock is not None:
            try:
                conn.sock.settimeout(timeout)
            except OSError:
                # The socket died between requests; reset so this
                # request opens a fresh connection instead of failing.
                conn.close()
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._lock:
            try:
                self._connections.remove(conn)
            except ValueError:
                pass
        try:
            conn.close()
        except Exception:
            pass

    def close(self) -> None:
        """Close every thread's persistent connection.  Idempotent; the
        client remains usable (a subsequent request reconnects)."""
        with self._lock:
            connections, self._connections = self._connections, []
            self._closed = True
        for conn in connections:
            try:
                conn.close()
            except Exception:
                pass

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None,
        *, timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(http_status, decoded_payload)``
        without interpreting errors (the raw escape hatch)."""
        effective = self.connect_timeout if timeout is None else timeout
        raw = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if raw else {}
        if not self.keep_alive:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=effective
            )
            try:
                conn.request(method, path, body=raw, headers=headers)
                response = conn.getresponse()
                payload = json.loads(response.read().decode("utf-8"))
                return response.status, payload
            finally:
                conn.close()
        for attempt in (0, 1):
            conn = self._connection(effective)
            # A socket that existed before this request may have been
            # idle-closed by the server; such a failure earns exactly
            # one transparent reconnect.  A fresh connection's failure
            # is real and propagates.
            was_connected = conn.sock is not None
            try:
                conn.request(method, path, body=raw, headers=headers)
                response = conn.getresponse()
                data = response.read()
                if response.will_close:
                    self._drop_connection()
                return response.status, json.loads(data.decode("utf-8"))
            except (http.client.HTTPException, ConnectionError, OSError):
                self._drop_connection()
                if attempt == 0 and was_connected:
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------

    def synthesize(
        self,
        query: str,
        *,
        domain: Optional[str] = None,
        engine: Optional[str] = None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        include_stats: bool = False,
        include_trace: bool = False,
        examples: Any = None,
        id: Any = None,
    ) -> Dict[str, Any]:
        """Synthesize one query; returns the response payload (the shared
        ``BatchItem.to_json()`` shape) or raises :class:`ServerError`.
        With ``retries > 0``, ``overloaded`` answers are retried after
        the server's ``retry_after_ms`` hint (exponential backoff when
        the hint is absent); every other error raises immediately.

        ``priority`` ("interactive", the default, or "batch") picks the
        admission class — batch requests yield slots to interactive
        ones and may be evicted from a full queue by them.

        ``examples`` (IOExample records, ``(input, output)`` pairs, or
        ``{"input", "output"}`` mappings) requests execution-guided
        verification; the response then carries ``candidates`` and
        ``verification`` (see docs/verification.md)."""
        body: Dict[str, Any] = {"query": query}
        if domain is not None:
            body["domain"] = domain
        if engine is not None:
            body["engine"] = engine
        if timeout is not None:
            body["timeout"] = timeout
        if priority is not None:
            body["priority"] = priority
        if include_stats:
            body["include_stats"] = True
        if include_trace:
            body["include_trace"] = True
        if examples is not None:
            body["examples"] = _examples_to_wire(examples)
        if id is not None:
            body["id"] = id
        # Leave the socket comfortably more patience than the synthesis
        # budget so the server, not the transport, reports the timeout.
        socket_timeout = (
            None if timeout is None
            else max(self.connect_timeout, timeout + 30.0)
        )
        for attempt in range(self.retries + 1):
            status, payload = self.request(
                "POST", "/synthesize", body, timeout=socket_timeout
            )
            try:
                _raise_for_error(payload, status)
            except ServerError as exc:
                if exc.code != "overloaded" or attempt >= self.retries:
                    raise
                if exc.retry_after_ms is not None:
                    time.sleep(exc.retry_after_ms / 1000.0)
                else:
                    time.sleep(self.backoff * (2 ** attempt))
                continue
            return payload

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")[1]

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")[1]

    def domains(self) -> List[str]:
        return self.request("GET", "/domains")[1]["domains"]

    def domain_details(self) -> Dict[str, Any]:
        """Per-domain provenance from ``GET /domains``: API count,
        grammar hash, and pack metadata for pack-backed domains."""
        return self.request("GET", "/domains")[1].get("details", {})

    def reload(self, cache_dir: Optional[str] = None) -> Dict[str, Any]:
        """POST /admin/reload — hot-swap freshly loaded cache snapshots."""
        body = None if cache_dir is None else {"cache_dir": cache_dir}
        status, payload = self.request("POST", "/admin/reload", body)
        _raise_for_error(payload, status)
        return payload


class StdioClient:
    """Client that owns a ``repro serve --stdio`` child process.

    Also accepts pre-opened text streams (``reader=``/``writer=``) for
    in-process testing of the line protocol without a subprocess.
    """

    def __init__(
        self,
        argv: Optional[List[str]] = None,
        *,
        reader=None,
        writer=None,
    ):
        self._proc: Optional[subprocess.Popen] = None
        if reader is not None or writer is not None:
            if reader is None or writer is None:
                raise ValueError("pass both reader and writer, or neither")
            self._reader, self._writer = reader, writer
        else:
            cmd = [sys.executable, "-m", "repro", "serve", "--stdio"]
            cmd += argv or []
            self._proc = subprocess.Popen(
                cmd,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
            )
            self._reader, self._writer = self._proc.stdout, self._proc.stdin

    # ------------------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One line out, one line back (the raw escape hatch)."""
        self._writer.write(json.dumps(payload) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ServerError("shutting_down", "stdio server closed the pipe")
        return json.loads(line)

    def synthesize(
        self,
        query: str,
        *,
        domain: Optional[str] = None,
        engine: Optional[str] = None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        include_stats: bool = False,
        include_trace: bool = False,
        examples: Any = None,
        id: Any = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"query": query}
        if domain is not None:
            body["domain"] = domain
        if engine is not None:
            body["engine"] = engine
        if timeout is not None:
            body["timeout"] = timeout
        if priority is not None:
            body["priority"] = priority
        if include_stats:
            body["include_stats"] = True
        if include_trace:
            body["include_trace"] = True
        if examples is not None:
            body["examples"] = _examples_to_wire(examples)
        if id is not None:
            body["id"] = id
        payload = self.request(body)
        _raise_for_error(payload)
        return payload

    def health(self) -> Dict[str, Any]:
        return self.request({"op": "health"})["health"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def reload(self, cache_dir: Optional[str] = None) -> Dict[str, Any]:
        """The ``reload`` op — hot-swap freshly loaded cache snapshots."""
        body: Dict[str, Any] = {"op": "reload"}
        if cache_dir is not None:
            body["cache_dir"] = cache_dir
        payload = self.request(body)
        _raise_for_error(payload)
        return payload["reload"]

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def close(self, *, timeout: float = 30.0) -> Optional[int]:
        """Shut the child down politely; returns its exit code (None for
        stream-backed clients)."""
        if self._proc is None:
            return None
        if self._proc.poll() is None:
            try:
                self.shutdown()
            except (ServerError, ValueError, OSError):
                pass  # already exiting or pipe closed
        try:
            self._proc.stdin.close()
        except OSError:
            pass
        code = self._proc.wait(timeout=timeout)
        self._proc.stdout.close()
        return code

    def __enter__(self) -> "StdioClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
