"""Declarative domain packs: file-based grammar/lexicon bundles.

A *pack* is a directory of plain-text files — ``pack.toml`` manifest,
``grammar.bnf``, ``apis.toml``, ``synonyms.toml``, ``examples.jsonl`` —
that fully describes a synthesis domain.  The loader validates the files
(with precise, line-numbered issues), materializes a
:class:`~repro.synthesis.domain.Domain` through the existing
``parse_bnf`` / ``Domain.create`` machinery, and registers it in
:mod:`repro.domains` by name; from there the CLI, batch runner and
server treat it exactly like a hand-written Python domain.

See ``docs/domain_packs.md`` for the authoring guide, and
``repro pack init`` for a working scaffold.
"""

from repro.packs.loader import (
    PACK_PATH_ENV,
    PackFactory,
    add_pack_path,
    builtin_pack_root,
    discover_packs,
    pack_factories,
    pack_name,
    refresh_domain,
    register_env_packs,
    register_pack,
    register_pack_dir,
)
from repro.packs.scaffold import scaffold_pack
from repro.packs.spec import (
    MANIFEST_NAME,
    PackIssue,
    PackSpec,
    is_pack_dir,
    load_pack,
    validate_pack,
)

__all__ = [
    "MANIFEST_NAME",
    "PACK_PATH_ENV",
    "PackFactory",
    "PackIssue",
    "PackSpec",
    "add_pack_path",
    "builtin_pack_root",
    "discover_packs",
    "is_pack_dir",
    "load_pack",
    "pack_factories",
    "pack_name",
    "refresh_domain",
    "register_env_packs",
    "register_pack",
    "register_pack_dir",
    "scaffold_pack",
    "validate_pack",
]
