"""Domain pack format: parsing and validation of the on-disk artifacts.

A *domain pack* is a directory of plain-text files that fully describes a
synthesis domain — the paper's point that a domain is nothing but "the API
document and the BNF grammar" made literal, in the spirit of the plain-text
grammar + dictionary files of Desai et al.'s NLPro systems:

``pack.toml``
    The manifest: pack identity plus knobs (literal slots, pruning policy,
    matcher tunables, path-search limits, cache capacities).
``grammar.bnf``
    The target DSL grammar, in the dialect of :mod:`repro.grammar.bnf`.
``apis.toml``
    The API document: one ``[[api]]`` table per entry with ``name``,
    ``description``, optional ``tokens`` (explicit name-token split) and
    ``category``.
``synonyms.toml`` (optional)
    Domain lexical knowledge: ``[[group]]`` tables with a ``words`` array
    (first member is the canonical label) and an ``[abbreviations]`` table.
``examples.jsonl`` (optional)
    The bundled evaluation suite: one JSON object per line with ``id``,
    ``query``, ``ground_truth`` and optional ``family`` / ``complexity``
    — exactly the fields of :class:`repro.eval.dataset.QueryCase`.

Everything is validated with **precise, line-numbered issues**
(:class:`PackIssue`): the mini-TOML reader tracks the defining line of
every key, the BNF parser reports its own line numbers, and example
ground truths are re-parsed and checked against the built grammar graph.
:func:`validate_pack` returns all issues; :func:`load_pack` raises
:class:`~repro.errors.PackError` when any are found.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from repro.errors import BNFSyntaxError, PackError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.synthesis.domain import Domain
from repro.eval.dataset import QueryCase
from repro.packs import tomlmini

#: Manifest file name that marks a directory as a pack.
MANIFEST_NAME = "pack.toml"

#: Current pack format version (the manifest's ``[pack] format``).
PACK_FORMAT = 1

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Recognized manifest tables and their allowed keys (None = any).
_SCHEMA: Dict[str, Optional[Tuple[str, ...]]] = {
    "pack": ("name", "version", "description", "format"),
    "grammar": ("file", "start", "generic_apis"),
    "apis": ("file",),
    "synonyms": ("file",),
    "examples": ("file",),
    "literals": ("quoted", "number"),
    "pruning": (
        "quantifier_lemmas",
        "merge_amod_lemmas",
        "drop_root_lemmas",
        "keep_lemmas",
        "drop_lemmas",
    ),
    "matching": (
        "max_candidates",
        "min_score",
        "description_weight",
        "similarity_weight",
        "similarity_floor",
    ),
    "limits": (
        "max_path_len",
        "max_paths",
        "max_visits",
        "max_paths_per_edge",
        "max_extra_len",
    ),
    "cache": ("paths", "conflicts", "sizes", "merge", "outcomes"),
}

#: Default companion file names, overridable per manifest section.
_DEFAULT_FILES = {
    "grammar": "grammar.bnf",
    "apis": "apis.toml",
    "synonyms": "synonyms.toml",
    "examples": "examples.jsonl",
}


@dataclass(frozen=True)
class PackIssue:
    """One validation problem, pinned to a file (and line when known)."""

    file: str
    line: Optional[int]
    message: str

    def __str__(self) -> str:
        where = self.file if self.line is None else f"{self.file}:{self.line}"
        return f"{where}: {self.message}"


@dataclass
class PackSpec:
    """The fully parsed (but not yet built) content of one pack."""

    root: Path
    name: str
    version: str
    description: str = ""
    format: int = PACK_FORMAT
    grammar_source: str = ""
    grammar_file: str = _DEFAULT_FILES["grammar"]
    apis_file: str = _DEFAULT_FILES["apis"]
    synonyms_file: str = _DEFAULT_FILES["synonyms"]
    examples_file: str = _DEFAULT_FILES["examples"]
    grammar_start: Optional[str] = None
    generic_apis: Tuple[str, ...] = ()
    apis: List[Dict[str, Any]] = field(default_factory=list)
    synonym_groups: List[Tuple[str, ...]] = field(default_factory=list)
    abbreviations: Dict[str, str] = field(default_factory=dict)
    literal_targets: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    pruning: Dict[str, Any] = field(default_factory=dict)
    matching: Dict[str, Any] = field(default_factory=dict)
    limits: Dict[str, int] = field(default_factory=dict)
    cache_capacities: Dict[str, int] = field(default_factory=dict)
    examples: List[QueryCase] = field(default_factory=list)
    content_hash: str = ""
    files: Tuple[str, ...] = ()

    def provenance(self) -> Dict[str, str]:
        """The metadata a built Domain carries about its origin."""
        return {
            "name": self.name,
            "version": self.version,
            "source": str(self.root),
            "content_hash": self.content_hash,
        }

    # ------------------------------------------------------------------

    def build_domain(self) -> "Domain":
        """Materialize a :class:`~repro.synthesis.domain.Domain` through
        the existing ``parse_bnf`` / ``Domain.create`` machinery."""
        from repro.grammar.paths import PathSearchLimits
        from repro.nlp.pruning import PruneConfig
        from repro.nlu.docs import ApiDoc
        from repro.nlu.synonyms import SynonymTable
        from repro.nlu.word2api import MatchConfig
        from repro.synthesis.domain import Domain

        docs = [
            ApiDoc(
                name=entry["name"],
                description=entry.get("description", ""),
                name_tokens=tuple(entry.get("tokens", ())),
                category=entry.get("category", ""),
            )
            for entry in self.apis
        ]
        synonyms = SynonymTable(abbreviations=self.abbreviations)
        for group in self.synonym_groups:
            synonyms.add_group(group)
        prune_kwargs = {
            key: frozenset(values) for key, values in self.pruning.items()
        }
        domain = Domain.create(
            name=self.name,
            bnf_source=self.grammar_source,
            api_docs=docs,
            synonyms=synonyms,
            prune_config=PruneConfig(**prune_kwargs) if prune_kwargs else None,
            literal_targets=self.literal_targets or None,
            match_config=(
                MatchConfig(**self.matching) if self.matching else None
            ),
            description=self.description,
            path_limits=(
                PathSearchLimits(**self.limits) if self.limits else None
            ),
            generic_apis=self.generic_apis or None,
            cache_capacities=self.cache_capacities or None,
            start=self.grammar_start,
            provenance=self.provenance(),
        )
        return domain

    def query_cases(self) -> List[QueryCase]:
        """The bundled evaluation suite (may be empty)."""
        return list(self.examples)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class _Reader:
    """Single-pack reader that accumulates issues instead of stopping at
    the first problem, so ``repro pack validate`` reports everything."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.issues: List[PackIssue] = []
        self.hashed: List[Tuple[str, bytes]] = []

    def issue(
        self, file: str, line: Optional[int], message: str
    ) -> None:
        self.issues.append(PackIssue(file, line, message))

    def read_text(self, name: str) -> Optional[str]:
        path = self.root / name
        try:
            raw = path.read_bytes()
        except OSError as exc:
            self.issue(name, None, f"cannot read file: {exc}")
            return None
        self.hashed.append((name, raw))
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            self.issue(name, None, f"not valid UTF-8: {exc}")
            return None

    # -- manifest ------------------------------------------------------

    def read(self) -> Optional[PackSpec]:
        if not self.root.is_dir():
            self.issue(
                MANIFEST_NAME, None, f"{self.root} is not a directory"
            )
            return None
        manifest = self.read_text(MANIFEST_NAME)
        if manifest is None:
            return None
        try:
            data, lines = tomlmini.parse(manifest)
        except tomlmini.TomlError as exc:
            self.issue(MANIFEST_NAME, exc.line, exc.message)
            return None

        self._check_schema(data, lines)
        pack = data.get("pack")
        if not isinstance(pack, dict):
            self.issue(MANIFEST_NAME, None, "missing [pack] table")
            return None
        name = self._required_str(pack, "pack", "name", lines)
        version = self._required_str(pack, "pack", "version", lines)
        if name is None or version is None:
            return None
        if not _NAME_RE.match(name):
            self.issue(
                MANIFEST_NAME,
                lines.get(("pack", "name")),
                f"pack name {name!r} must match [a-z][a-z0-9_]*",
            )
            return None
        fmt = pack.get("format", PACK_FORMAT)
        if fmt != PACK_FORMAT:
            self.issue(
                MANIFEST_NAME,
                lines.get(("pack", "format")),
                f"unsupported pack format {fmt!r} "
                f"(this loader reads format {PACK_FORMAT})",
            )
            return None

        spec = PackSpec(
            root=self.root,
            name=name,
            version=version,
            description=str(pack.get("description", "")),
        )
        self._read_grammar(data, lines, spec)
        self._read_apis(data, lines, spec)
        self._read_synonyms(data, lines, spec)
        self._read_literals(data, lines, spec)
        self._read_tunables(data, lines, spec)
        self._read_examples(data, lines, spec)

        digest = hashlib.sha256()
        for fname, raw in sorted(self.hashed):
            digest.update(fname.encode("utf-8"))
            digest.update(b"\0")
            digest.update(raw)
            digest.update(b"\0")
        spec.content_hash = digest.hexdigest()
        spec.files = tuple(sorted(fname for fname, _ in self.hashed))
        return spec

    def _check_schema(self, data: Dict[str, Any], lines) -> None:
        for table, value in data.items():
            if table == "api" or table == "group":
                self.issue(
                    MANIFEST_NAME,
                    lines.get((table, 0)),
                    f"[[{table}]] belongs in "
                    f"{'apis.toml' if table == 'api' else 'synonyms.toml'}, "
                    "not the manifest",
                )
                continue
            if table not in _SCHEMA:
                self.issue(
                    MANIFEST_NAME,
                    lines.get((table,)),
                    f"unknown manifest table [{table}]",
                )
                continue
            allowed = _SCHEMA[table]
            if allowed is None or not isinstance(value, dict):
                continue
            for key in value:
                if key not in allowed:
                    self.issue(
                        MANIFEST_NAME,
                        lines.get((table, key)),
                        f"unknown key {key!r} in [{table}] "
                        f"(allowed: {', '.join(allowed)})",
                    )

    def _required_str(
        self, table: Dict[str, Any], tname: str, key: str, lines
    ) -> Optional[str]:
        value = table.get(key)
        if not isinstance(value, str) or not value:
            self.issue(
                MANIFEST_NAME,
                lines.get((tname, key), lines.get((tname,))),
                f"[{tname}] requires a non-empty string {key!r}",
            )
            return None
        return value

    def _str_list(
        self, value: Any, file: str, line: Optional[int], what: str
    ) -> Optional[Tuple[str, ...]]:
        if not isinstance(value, list) or not all(
            isinstance(v, str) for v in value
        ):
            self.issue(file, line, f"{what} must be an array of strings")
            return None
        return tuple(value)

    def _section_file(
        self, data: Dict[str, Any], lines, section: str
    ) -> str:
        table = data.get(section) or {}
        name = table.get("file", _DEFAULT_FILES[section])
        if not isinstance(name, str) or not name:
            self.issue(
                MANIFEST_NAME,
                lines.get((section, "file")),
                f"[{section}] file must be a non-empty string",
            )
            return _DEFAULT_FILES[section]
        if Path(name).is_absolute() or ".." in Path(name).parts:
            self.issue(
                MANIFEST_NAME,
                lines.get((section, "file")),
                f"[{section}] file must be a plain name inside the pack, "
                f"got {name!r}",
            )
            return _DEFAULT_FILES[section]
        return name

    # -- grammar -------------------------------------------------------

    def _read_grammar(
        self, data: Dict[str, Any], lines, spec: PackSpec
    ) -> None:
        spec.grammar_file = self._section_file(data, lines, "grammar")
        table = data.get("grammar") or {}
        start = table.get("start")
        if start is not None and not isinstance(start, str):
            self.issue(
                MANIFEST_NAME,
                lines.get(("grammar", "start")),
                "grammar start must be a string",
            )
            start = None
        spec.grammar_start = start
        generic = table.get("generic_apis")
        if generic is not None:
            got = self._str_list(
                generic,
                MANIFEST_NAME,
                lines.get(("grammar", "generic_apis")),
                "grammar generic_apis",
            )
            spec.generic_apis = got or ()
        source = self.read_text(spec.grammar_file)
        if source is None:
            return
        spec.grammar_source = source
        try:
            from repro.grammar.bnf import parse_bnf

            grammar = parse_bnf(source, start=spec.grammar_start)
        except BNFSyntaxError as exc:
            self.issue(spec.grammar_file, exc.line, exc.bare_message)
            return
        except ReproError as exc:
            self.issue(spec.grammar_file, None, str(exc))
            return
        if (
            spec.grammar_start is not None
            and spec.grammar_start not in grammar.nonterminals
        ):
            self.issue(
                MANIFEST_NAME,
                lines.get(("grammar", "start")),
                f"start symbol {spec.grammar_start!r} is not a nonterminal "
                "of the grammar",
            )

    # -- apis ----------------------------------------------------------

    def _read_apis(
        self, data: Dict[str, Any], lines, spec: PackSpec
    ) -> None:
        fname = self._section_file(data, lines, "apis")
        spec.apis_file = fname
        source = self.read_text(fname)
        if source is None:
            return
        try:
            doc, doc_lines = tomlmini.parse(source)
        except tomlmini.TomlError as exc:
            self.issue(fname, exc.line, exc.message)
            return
        entries = doc.get("api")
        unknown_tables = sorted(set(doc) - {"api"})
        for table in unknown_tables:
            self.issue(
                fname,
                doc_lines.get((table,), doc_lines.get((table, 0))),
                f"unknown table [{table}] (expected only [[api]] entries)",
            )
        if not isinstance(entries, list) or not entries:
            self.issue(fname, None, "no [[api]] entries found")
            return
        seen: Dict[str, int] = {}
        for index, entry in enumerate(entries):
            line = doc_lines.get(("api", index))
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                self.issue(
                    fname, line, "[[api]] requires a non-empty string 'name'"
                )
                continue
            desc = entry.get("description")
            if not isinstance(desc, str) or not desc:
                self.issue(
                    fname,
                    line,
                    f"api {name!r} requires a non-empty 'description'",
                )
            if name in seen:
                self.issue(
                    fname,
                    doc_lines.get(("api", index, "name"), line),
                    f"api {name!r} duplicates the entry on line "
                    f"{seen[name]}",
                )
                continue
            seen[name] = doc_lines.get(("api", index, "name"), line) or 0
            tokens = entry.get("tokens", [])
            if self._str_list(
                tokens,
                fname,
                doc_lines.get(("api", index, "tokens"), line),
                f"api {name!r} tokens",
            ) is None:
                entry = dict(entry, tokens=[])
            category = entry.get("category", "")
            if not isinstance(category, str):
                self.issue(
                    fname,
                    doc_lines.get(("api", index, "category"), line),
                    f"api {name!r} category must be a string",
                )
                entry = dict(entry, category="")
            unknown = sorted(
                set(entry) - {"name", "description", "tokens", "category"}
            )
            if unknown:
                self.issue(
                    fname,
                    doc_lines.get(("api", index, unknown[0]), line),
                    f"api {name!r} has unknown key(s): {', '.join(unknown)}",
                )
            spec.apis.append(dict(entry))

    # -- synonyms ------------------------------------------------------

    def _read_synonyms(
        self, data: Dict[str, Any], lines, spec: PackSpec
    ) -> None:
        fname = self._section_file(data, lines, "synonyms")
        spec.synonyms_file = fname
        if "synonyms" not in data and not (self.root / fname).exists():
            return  # optional
        source = self.read_text(fname)
        if source is None:
            return
        try:
            doc, doc_lines = tomlmini.parse(source)
        except tomlmini.TomlError as exc:
            self.issue(fname, exc.line, exc.message)
            return
        for table in sorted(set(doc) - {"group", "abbreviations"}):
            self.issue(
                fname,
                doc_lines.get((table,), doc_lines.get((table, 0))),
                f"unknown table [{table}] "
                "(expected [[group]] and [abbreviations])",
            )
        for index, group in enumerate(doc.get("group", [])):
            line = doc_lines.get(("group", index))
            words = self._str_list(
                group.get("words"),
                fname,
                doc_lines.get(("group", index, "words"), line),
                "[[group]] words",
            )
            if words is None:
                continue
            if len(words) < 2:
                self.issue(
                    fname,
                    doc_lines.get(("group", index, "words"), line),
                    "a synonym group needs at least two words",
                )
                continue
            unknown = sorted(set(group) - {"words"})
            if unknown:
                self.issue(
                    fname, line,
                    f"[[group]] has unknown key(s): {', '.join(unknown)}",
                )
            spec.synonym_groups.append(tuple(w.lower() for w in words))
        abbrevs = doc.get("abbreviations", {})
        if not isinstance(abbrevs, dict):
            self.issue(fname, None, "[abbreviations] must be a table")
            return
        for short, full in abbrevs.items():
            if not isinstance(full, str) or not full:
                self.issue(
                    fname,
                    doc_lines.get(("abbreviations", short)),
                    f"abbreviation {short!r} must map to a non-empty string",
                )
                continue
            spec.abbreviations[short.lower()] = full.lower()

    # -- literals / tunables -------------------------------------------

    def _read_literals(
        self, data: Dict[str, Any], lines, spec: PackSpec
    ) -> None:
        table = data.get("literals") or {}
        for kind in ("quoted", "number"):
            if kind not in table:
                continue
            got = self._str_list(
                table[kind],
                MANIFEST_NAME,
                lines.get(("literals", kind)),
                f"literals {kind}",
            )
            if got is not None:
                spec.literal_targets[kind] = got

    def _read_tunables(
        self, data: Dict[str, Any], lines, spec: PackSpec
    ) -> None:
        for key, values in (data.get("pruning") or {}).items():
            if key not in _SCHEMA["pruning"]:
                continue  # already flagged by _check_schema
            got = self._str_list(
                values, MANIFEST_NAME, lines.get(("pruning", key)),
                f"pruning {key}",
            )
            if got is not None:
                spec.pruning[key] = got
        for key, value in (data.get("matching") or {}).items():
            if key not in _SCHEMA["matching"]:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                self.issue(
                    MANIFEST_NAME,
                    lines.get(("matching", key)),
                    f"matching {key} must be a number, got {value!r}",
                )
                continue
            spec.matching[key] = (
                int(value) if key == "max_candidates" else float(value)
            )
        for table_name, target in (("limits", spec.limits),
                                   ("cache", spec.cache_capacities)):
            for key, value in (data.get(table_name) or {}).items():
                if key not in _SCHEMA[table_name]:
                    continue
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    self.issue(
                        MANIFEST_NAME,
                        lines.get((table_name, key)),
                        f"{table_name} {key} must be a non-negative "
                        f"integer, got {value!r}",
                    )
                    continue
                target[key] = value

    # -- examples ------------------------------------------------------

    def _read_examples(
        self, data: Dict[str, Any], lines, spec: PackSpec
    ) -> None:
        fname = self._section_file(data, lines, "examples")
        spec.examples_file = fname
        if "examples" not in data and not (self.root / fname).exists():
            return  # optional
        source = self.read_text(fname)
        if source is None:
            return
        seen_ids: Dict[str, int] = {}
        seen_queries: Dict[str, int] = {}
        for line_no, raw in enumerate(source.splitlines(), start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            try:
                obj = json.loads(text)
            except json.JSONDecodeError as exc:
                self.issue(fname, line_no, f"malformed JSON: {exc.msg}")
                continue
            if not isinstance(obj, dict):
                self.issue(fname, line_no, "each example must be an object")
                continue
            missing = [
                key for key in ("id", "query", "ground_truth")
                if not isinstance(obj.get(key), str) or not obj.get(key)
            ]
            if missing:
                self.issue(
                    fname,
                    line_no,
                    f"example missing required string field(s): "
                    f"{', '.join(missing)}",
                )
                continue
            complexity = obj.get("complexity", 2)
            if not isinstance(complexity, int) or isinstance(complexity, bool):
                self.issue(
                    fname, line_no,
                    f"complexity must be an integer, got {complexity!r}",
                )
                complexity = 2
            family = obj.get("family", "default")
            if not isinstance(family, str):
                self.issue(fname, line_no, "family must be a string")
                family = "default"
            unknown = sorted(
                set(obj) - {"id", "query", "ground_truth", "family",
                            "complexity", "input", "output"}
            )
            if unknown:
                self.issue(
                    fname, line_no,
                    f"example has unknown key(s): {', '.join(unknown)}",
                )
            example_input = obj.get("input")
            example_output = obj.get("output")
            if (example_input is None) != (example_output is None):
                self.issue(
                    fname, line_no,
                    "example 'input' and 'output' must be given together",
                )
                example_input = example_output = None
            elif example_input is not None and (
                not isinstance(example_input, str)
                or not isinstance(example_output, str)
            ):
                self.issue(
                    fname, line_no,
                    "example 'input'/'output' must be strings",
                )
                example_input = example_output = None
            case_id = obj["id"]
            if case_id in seen_ids:
                self.issue(
                    fname, line_no,
                    f"id {case_id!r} duplicates line {seen_ids[case_id]}",
                )
                continue
            seen_ids[case_id] = line_no
            if obj["query"] in seen_queries:
                self.issue(
                    fname, line_no,
                    f"query duplicates line {seen_queries[obj['query']]}",
                )
                continue
            seen_queries[obj["query"]] = line_no
            spec.examples.append(
                QueryCase(
                    case_id=case_id,
                    query=obj["query"],
                    ground_truth=obj["ground_truth"],
                    family=family,
                    complexity=complexity,
                    example_input=example_input,
                    example_output=example_output,
                )
            )


# ---------------------------------------------------------------------------
# Cross-file (semantic) validation
# ---------------------------------------------------------------------------


def _semantic_issues(spec: PackSpec) -> List[PackIssue]:
    """Checks that need several files at once: document/grammar coverage,
    literal-slot consistency, and grammar-valid example ground truths."""
    issues: List[PackIssue] = []
    if not spec.grammar_source or not spec.apis:
        return issues
    try:
        from repro.grammar.bnf import parse_bnf

        grammar = parse_bnf(spec.grammar_source, start=spec.grammar_start)
    except ReproError:
        return issues  # already reported with its own line number

    api_file = spec.apis_file
    api_names = [entry["name"] for entry in spec.apis if "name" in entry]
    for name in api_names:
        if name not in grammar.terminals:
            issues.append(PackIssue(
                api_file, None,
                f"api {name!r} is not a terminal of the grammar",
            ))
    slots = grammar.terminals - set(api_names)
    listed = set()
    for kind, targets in spec.literal_targets.items():
        for slot in targets:
            listed.add(slot)
            if slot not in slots:
                issues.append(PackIssue(
                    MANIFEST_NAME, None,
                    f"literals {kind} slot {slot!r} is not a literal "
                    "(non-API) terminal of the grammar",
                ))
    unlisted = sorted(slots - listed)
    if unlisted:
        issues.append(PackIssue(
            MANIFEST_NAME, None,
            "grammar terminal(s) neither documented as APIs nor listed "
            f"as literal slots: {', '.join(unlisted[:8])}",
        ))
    if issues:
        return issues

    # Ground truths: parse and validate against the built grammar graph.
    if spec.examples:
        try:
            domain = spec.build_domain()
        except ReproError as exc:
            issues.append(PackIssue(MANIFEST_NAME, None, str(exc)))
            return issues
        from repro.core.expression import parse_expression, validate_expression

        example_file = spec.examples_file
        line_by_id = _example_lines(spec)
        for case in spec.examples:
            try:
                expr = parse_expression(case.ground_truth)
            except ReproError as exc:
                issues.append(PackIssue(
                    example_file, line_by_id.get(case.case_id),
                    f"example {case.case_id!r} ground truth does not "
                    f"parse: {exc}",
                ))
                continue
            for problem in validate_expression(expr, domain.graph):
                issues.append(PackIssue(
                    example_file, line_by_id.get(case.case_id),
                    f"example {case.case_id!r} ground truth is not "
                    f"grammar-valid: {problem}",
                ))
        issues.extend(_executor_replay_issues(spec, domain))
    return issues


def _executor_replay_issues(spec: PackSpec, domain) -> List[PackIssue]:
    """Replay every input→output fixture through the domain's registered
    executor: the authored ground truth must actually reproduce the
    authored output, so the same cases double as trustworthy verification
    fixtures (docs/verification.md).  Domains without an executor skip
    the check (the fixtures are then documentation only)."""
    from repro.verify.executors import get_executor, has_executor

    issues: List[PackIssue] = []
    if not has_executor(spec.name):
        return issues
    executor = get_executor(spec.name)
    example_file = spec.examples_file
    line_by_id = _example_lines(spec)
    for case in spec.examples:
        if case.example_input is None or case.example_output is None:
            continue
        try:
            observed = executor(case.ground_truth, case.example_input)
        except Exception as exc:  # noqa: BLE001 - any failure is an issue
            issues.append(PackIssue(
                example_file, line_by_id.get(case.case_id),
                f"example {case.case_id!r} ground truth fails to execute "
                f"on its input: {type(exc).__name__}: {exc}",
            ))
            continue
        if observed != case.example_output:
            issues.append(PackIssue(
                example_file, line_by_id.get(case.case_id),
                f"example {case.case_id!r} ground truth does not "
                f"reproduce its output: expected "
                f"{case.example_output!r}, observed {observed!r}",
            ))
    return issues


def _example_lines(spec: PackSpec) -> Dict[str, int]:
    """Best-effort map of example id -> line in the examples file."""
    path = spec.root / spec.examples_file
    out: Dict[str, int] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return out
    for line_no, raw in enumerate(text.splitlines(), start=1):
        raw = raw.strip()
        if not raw or raw.startswith("#"):
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if isinstance(obj, dict) and isinstance(obj.get("id"), str):
            out.setdefault(obj["id"], line_no)
    return out


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def validate_pack(
    root: Union[str, Path]
) -> Tuple[Optional[PackSpec], List[PackIssue]]:
    """Read and fully validate the pack at ``root``.

    Returns ``(spec, issues)``: the parsed spec (None when the manifest
    itself is unusable) and *every* issue found — empty means the pack is
    valid and :meth:`PackSpec.build_domain` will succeed.
    """
    reader = _Reader(root)
    spec = reader.read()
    issues = list(reader.issues)
    if spec is not None and not issues:
        issues.extend(_semantic_issues(spec))
    return spec, issues


def load_pack(root: Union[str, Path]) -> PackSpec:
    """Load a validated pack, raising :class:`~repro.errors.PackError`
    (with the full issue list) when anything is wrong."""
    spec, issues = validate_pack(root)
    if issues or spec is None:
        raise PackError(
            f"pack at {root} failed validation "
            f"({len(issues)} issue{'s' if len(issues) != 1 else ''})",
            issues,
        )
    return spec


def is_pack_dir(path: Union[str, Path]) -> bool:
    """True when ``path`` is a directory containing a pack manifest."""
    return (Path(path) / MANIFEST_NAME).is_file()
