"""Pack discovery and registration: from a directory of plain files to a
named entry in :mod:`repro.domains`.

A :class:`PackFactory` wraps one pack directory and behaves exactly like
the built-in domain factories (``factory(fresh=False)`` plus a
``cache_clear`` attribute), so the registry, the process-pool workers and
``clear_cached_domains`` need no special cases.  On top of that it knows
how to :meth:`~PackFactory.refresh` itself from disk — the server's
reload path uses this to pick up an *edited* pack: the content hash is
re-read, and only a changed pack is rebuilt (unchanged domains keep their
object identity, so their results stay byte-identical across a reload).

Discovery is environment-driven so every entry point agrees:

* the two shipped packs under ``repro/packs/builtin/`` always register;
* ``REPRO_PACK_PATH`` (``os.pathsep``-separated directories, each either
  a pack or a folder of packs) registers at ``repro.domains`` import
  time — which is also what makes packs visible inside forked/spawned
  process-pool workers;
* ``--pack-dir`` on the CLI calls :func:`add_pack_path`, which registers
  the packs *and* appends to ``REPRO_PACK_PATH`` so child processes
  inherit them.
"""

from __future__ import annotations

import os
import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.errors import PackError
from repro.packs import tomlmini
from repro.packs.spec import MANIFEST_NAME, is_pack_dir, load_pack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.synthesis.domain import Domain

#: Environment variable listing extra pack directories (os.pathsep-joined).
PACK_PATH_ENV = "REPRO_PACK_PATH"


def builtin_pack_root() -> Path:
    """The directory holding the packs shipped inside this package."""
    return Path(__file__).resolve().parent / "builtin"


class PackFactory:
    """Domain factory backed by a pack directory.

    Registry-compatible: callable with a ``fresh`` keyword, exposes
    ``cache_clear``.  The shared instance is built lazily on first use
    (registration itself only reads the manifest), and validation
    failures surface as :class:`~repro.errors.PackError` at build time.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).resolve()
        self._lock = threading.Lock()
        self._shared: Optional["Domain"] = None
        self._content_hash: Optional[str] = None

    def __call__(self, fresh: bool = False) -> "Domain":
        if fresh:
            return load_pack(self.root).build_domain()
        with self._lock:
            if self._shared is None:
                spec = load_pack(self.root)
                self._shared = spec.build_domain()
                self._content_hash = spec.content_hash
            return self._shared

    def cache_clear(self) -> None:
        with self._lock:
            self._shared = None
            self._content_hash = None

    def refresh(self) -> Optional["Domain"]:
        """Re-read the pack from disk.

        Returns the new shared :class:`Domain` when the pack's content
        hash changed (or no instance was built yet), ``None`` when the
        on-disk files are unchanged — the existing shared instance (and
        its warm caches) stays in place.  Raises
        :class:`~repro.errors.PackError` if the edited pack no longer
        validates; the previous domain keeps serving in that case.
        """
        spec = load_pack(self.root)
        with self._lock:
            if (
                self._shared is not None
                and spec.content_hash == self._content_hash
            ):
                return None
            domain = spec.build_domain()
            self._shared = domain
            self._content_hash = spec.content_hash
            return domain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackFactory({str(self.root)!r})"


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


def pack_name(root: Union[str, Path]) -> str:
    """The pack's declared name, from the manifest alone (cheap — no
    grammar build).  Raises :class:`~repro.errors.PackError` when the
    manifest is missing or unreadable."""
    path = Path(root) / MANIFEST_NAME
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise PackError(f"cannot read {path}: {exc}") from None
    try:
        data, _ = tomlmini.parse(source)
    except tomlmini.TomlError as exc:
        raise PackError(f"{path}: {exc}") from None
    name = (data.get("pack") or {}).get("name")
    if not isinstance(name, str) or not name:
        raise PackError(f"{path}: missing [pack] name")
    return name.lower()


def register_pack(root: Union[str, Path]) -> str:
    """Register the pack at ``root`` in :mod:`repro.domains` by its
    declared name; returns the name.

    Idempotent for the same directory (re-registering the same pack is a
    no-op); a *different* source for an already-taken name raises
    :class:`~repro.errors.PackError`.
    """
    import repro.domains as domains

    name = pack_name(root)
    resolved = Path(root).resolve()
    existing = domains._REGISTRY.get(name)
    if existing is not None:
        if isinstance(existing, PackFactory) and existing.root == resolved:
            return name
        raise PackError(
            f"pack name {name!r} (from {resolved}) collides with an "
            "already-registered domain"
        )
    domains.register(name, PackFactory(resolved))
    return name


def discover_packs(directory: Union[str, Path]) -> List[Path]:
    """Pack directories under ``directory``: the directory itself when it
    is a pack, otherwise its immediate children that contain a manifest."""
    base = Path(directory)
    if is_pack_dir(base):
        return [base]
    if not base.is_dir():
        return []
    return sorted(
        child for child in base.iterdir()
        if child.is_dir() and is_pack_dir(child)
    )


def register_pack_dir(directory: Union[str, Path]) -> List[str]:
    """Register every pack found under ``directory``; returns the names."""
    return [register_pack(root) for root in discover_packs(directory)]


def add_pack_path(directory: Union[str, Path]) -> List[str]:
    """Register packs under ``directory`` *and* append it to
    ``REPRO_PACK_PATH`` so spawned/forked workers (which re-run
    :func:`register_env_packs` at ``repro.domains`` import) see them too.
    """
    names = register_pack_dir(directory)
    entry = str(Path(directory).resolve())
    current = os.environ.get(PACK_PATH_ENV, "")
    parts = [p for p in current.split(os.pathsep) if p]
    if entry not in parts:
        parts.append(entry)
        os.environ[PACK_PATH_ENV] = os.pathsep.join(parts)
    return names


def register_env_packs() -> List[str]:
    """Register the shipped builtin packs plus everything on
    ``REPRO_PACK_PATH``.  Called once at ``repro.domains`` import time.

    A broken *environment* pack warns instead of raising — an invalid
    directory on the path must not take down every entry point; it still
    fails loudly under ``repro pack validate`` and at first use.
    """
    names: List[str] = []
    names.extend(register_pack_dir(builtin_pack_root()))
    for entry in os.environ.get(PACK_PATH_ENV, "").split(os.pathsep):
        if not entry:
            continue
        try:
            names.extend(register_pack_dir(entry))
        except PackError as exc:
            warnings.warn(
                f"ignoring pack(s) from {PACK_PATH_ENV} entry {entry!r}: "
                f"{exc}",
                stacklevel=2,
            )
    return names


# ---------------------------------------------------------------------------
# Introspection / reload
# ---------------------------------------------------------------------------


def pack_factories() -> Dict[str, PackFactory]:
    """Registered pack-backed domains, as ``name -> PackFactory``."""
    import repro.domains as domains

    return {
        name: factory
        for name, factory in domains._REGISTRY.items()
        if isinstance(factory, PackFactory)
    }


def refresh_domain(name: str) -> Optional["Domain"]:
    """Re-read a pack-backed domain from disk (see
    :meth:`PackFactory.refresh`).  Returns ``None`` for non-pack domains
    and for packs whose files are unchanged."""
    factory = pack_factories().get(name.lower())
    if factory is None:
        return None
    return factory.refresh()
