"""``repro pack init``: write a minimal working pack to start from.

The scaffold is a deliberately tiny but *complete* domain (a toy
notification console: show/clear messages and alerts, show a literal
text) — every file of the format is present, the pack validates as
written, and its three bundled examples synthesize.  Authors rename
things rather than reverse-engineer the format from prose.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Union

from repro.errors import PackError

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

_MANIFEST = """\
# Domain pack manifest — see docs/domain_packs.md for the format spec.
[pack]
name = "{name}"
version = "0.1.0"
description = "Scaffolded domain pack; edit me"

[grammar]
file = "grammar.bnf"

[apis]
file = "apis.toml"

[synonyms]
file = "synonyms.toml"

[examples]
file = "examples.jsonl"

# Literal slots: which grammar terminals a quoted string / number in the
# query may bind to.  Every non-API terminal must be listed somewhere here.
[literals]
quoted = ["text_val"]
"""

_GRAMMAR = """\
# Target-DSL grammar (BNF).  UPPERCASE terminals are APIs (they must be
# documented in apis.toml); lowercase terminals are literal slots.
command   ::= show_cmd | clear_cmd
show_cmd  ::= SHOW show_what
show_what ::= MESSAGES | ALERTS | msg_text
msg_text  ::= TEXT text_val
clear_cmd ::= CLEAR clear_what
clear_what ::= MESSAGES | ALERTS
"""

_APIS = """\
# API document: one [[api]] entry per UPPERCASE grammar terminal.
# 'tokens' is the explicit name-token split used for word matching;
# 'description' supplies the bag-of-words evidence.

[[api]]
name = "SHOW"
description = "Show or display items on the console"
tokens = ["show"]

[[api]]
name = "CLEAR"
description = "Clear or dismiss items from the console"
tokens = ["clear"]

[[api]]
name = "MESSAGES"
description = "The messages in the console"
tokens = ["message"]

[[api]]
name = "ALERTS"
description = "The alerts in the console"
tokens = ["alert"]

[[api]]
name = "TEXT"
description = "A literal piece of text"
tokens = ["text"]
"""

_SYNONYMS = """\
# Domain lexical knowledge, merged on top of the built-in genre table.
# Each [[group]] is one set of interchangeable words; the first member
# is the canonical label.

[[group]]
words = ["message", "notification"]

[[group]]
words = ["alert", "warning"]

[abbreviations]
msg = "message"
"""

_EXAMPLES = [
    {
        "id": "scaffold001",
        "query": "show all messages",
        "ground_truth": "SHOW(MESSAGES())",
        "family": "show",
        "complexity": 1,
    },
    {
        "id": "scaffold002",
        "query": "clear every alert",
        "ground_truth": "CLEAR(ALERTS())",
        "family": "clear",
        "complexity": 1,
    },
    {
        "id": "scaffold003",
        "query": 'show the text "hello"',
        "ground_truth": 'SHOW(TEXT("hello"))',
        "family": "show",
        "complexity": 2,
    },
]


def scaffold_pack(dest: Union[str, Path], name: str) -> Path:
    """Write a new pack directory ``dest / name`` and return its path.

    The destination must not already contain a ``name`` entry; the pack
    name must be a valid domain name (``[a-z][a-z0-9_]*``).
    """
    if not _NAME_RE.match(name):
        raise PackError(
            f"pack name {name!r} must match [a-z][a-z0-9_]* "
            "(lowercase letters, digits, underscores)"
        )
    root = Path(dest) / name
    if root.exists():
        raise PackError(f"{root} already exists; refusing to overwrite")
    root.mkdir(parents=True)
    files: Dict[str, str] = {
        "pack.toml": _MANIFEST.format(name=name),
        "grammar.bnf": _GRAMMAR,
        "apis.toml": _APIS,
        "synonyms.toml": _SYNONYMS,
        "examples.jsonl": "\n".join(
            json.dumps(entry) for entry in _EXAMPLES
        ) + "\n",
    }
    for fname, content in files.items():
        (root / fname).write_text(content, encoding="utf-8")
    return root
