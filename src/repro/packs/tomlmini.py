"""A line-tracking reader for the TOML subset domain packs use.

Domain packs are plain-text artifacts whose loader must speak precise,
line-numbered validation errors ("apis.toml:41: api 'SUM' duplicates the
entry on line 12"), and the repo supports Python versions without
:mod:`tomllib`.  Both point the same way: a small parser of our own that
returns the decoded document *and* a source map.

Supported subset (everything the pack format needs, nothing more):

* ``[table]`` headers and ``[[array-of-tables]]`` headers;
* ``key = value`` pairs with bare keys;
* values: basic ``"..."`` strings (with the usual backslash escapes),
  integers, floats, booleans, and (possibly multi-line) arrays of those;
* ``#`` comments and blank lines.

Unsupported TOML (dotted keys, inline tables, literal/multiline strings,
dates) fails loudly with the offending line, never silently misparses.

:func:`parse` returns ``(data, linemap)`` where ``linemap`` maps a key
path — a tuple of table names, array indices, and the key — to the
1-based line it was defined on; table headers are mapped too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

PathKey = Tuple[Union[str, int], ...]
LineMap = Dict[PathKey, int]


class TomlError(ValueError):
    """Malformed document; carries the 1-based source line."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.message = message
        self.line = line


_ESCAPES = {
    '"': '"', "\\": "\\", "n": "\n", "t": "\t", "r": "\r",
    "b": "\b", "f": "\f",
}

_BARE_KEY = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"
)


def _parse_string(text: str, pos: int, line: int) -> Tuple[str, int]:
    """Parse a basic string starting at ``text[pos] == '"'``; returns
    (value, position after the closing quote)."""
    out: List[str] = []
    i = pos + 1
    while i < len(text):
        ch = text[i]
        if ch == '"':
            return "".join(out), i + 1
        if ch == "\\":
            if i + 1 >= len(text):
                break
            esc = text[i + 1]
            if esc == "u" and i + 5 < len(text):
                try:
                    out.append(chr(int(text[i + 2:i + 6], 16)))
                except ValueError:
                    raise TomlError(
                        f"bad unicode escape {text[i:i + 6]!r}", line
                    ) from None
                i += 6
                continue
            if esc not in _ESCAPES:
                raise TomlError(f"unknown escape \\{esc}", line)
            out.append(_ESCAPES[esc])
            i += 2
            continue
        out.append(ch)
        i += 1
    raise TomlError("unterminated string", line)


def _parse_scalar(token: str, line: int) -> Any:
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token, 10)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    raise TomlError(f"cannot parse value {token!r}", line)


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i] in " \t":
        i += 1
    return i


def _strip_comment(line: str) -> str:
    """Drop a trailing comment, respecting quoted strings."""
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\" or not in_str):
            in_str = not in_str
        elif ch == "#" and not in_str:
            return line[:i]
        i += 1
    return line


class _Parser:
    def __init__(self, source: str):
        self.lines = source.splitlines()
        self.data: Dict[str, Any] = {}
        self.linemap: LineMap = {}
        #: Current table as (container dict, path prefix).
        self.current: Dict[str, Any] = self.data
        self.prefix: PathKey = ()
        self.index = 0  # current physical line (0-based)

    # -- value parsing -------------------------------------------------

    def _parse_value(self, text: str, line_no: int) -> Tuple[Any, str]:
        """Parse one value at the start of ``text`` (already lstripped);
        returns (value, unconsumed trailing text).  Arrays may continue
        onto later physical lines (``self.index`` advances)."""
        if text.startswith('"'):
            value, end = _parse_string(text, 0, line_no)
            return value, text[end:]
        if text.startswith("["):
            return self._parse_array(text, line_no)
        # Bare scalar: runs to end of text.
        token = text.strip()
        return _parse_scalar(token, line_no), ""

    def _parse_array(self, text: str, line_no: int) -> Tuple[List[Any], str]:
        items: List[Any] = []
        i = 1  # past '['
        while True:
            i = _skip_ws(text, i)
            while i >= len(text) or text[i] == "#":
                # Array continues on the next physical line.
                self.index += 1
                if self.index >= len(self.lines):
                    raise TomlError("unterminated array", line_no)
                text = _strip_comment(self.lines[self.index]).strip()
                line_no = self.index + 1
                i = 0
                i = _skip_ws(text, i)
            if text[i] == "]":
                return items, text[i + 1:]
            if text[i] == ",":
                i += 1
                continue
            if text[i] == '"':
                value, i = _parse_string(text, i, line_no)
            elif text[i] == "[":
                raise TomlError("nested arrays are not supported", line_no)
            else:
                j = i
                while j < len(text) and text[j] not in ",]# \t":
                    j += 1
                value = _parse_scalar(text[i:j], line_no)
                i = j
            items.append(value)

    # -- line handling -------------------------------------------------

    def _enter_table(self, header: str, line_no: int) -> None:
        array_of_tables = header.startswith("[[")
        name = header.strip("[]").strip()
        if not name or not set(name) <= _BARE_KEY:
            raise TomlError(f"bad table name {header!r}", line_no)
        if array_of_tables:
            bucket = self.data.setdefault(name, [])
            if not isinstance(bucket, list):
                raise TomlError(
                    f"{name!r} is already a table, not an array of tables",
                    line_no,
                )
            entry: Dict[str, Any] = {}
            bucket.append(entry)
            self.current = entry
            self.prefix = (name, len(bucket) - 1)
        else:
            if name in self.data:
                raise TomlError(f"duplicate table [{name}]", line_no)
            entry = {}
            self.data[name] = entry
            self.current = entry
            self.prefix = (name,)
        self.linemap[self.prefix] = line_no

    def _enter_pair(self, text: str, line_no: int) -> None:
        key, sep, rest = text.partition("=")
        key = key.strip()
        if not sep:
            raise TomlError(f"expected 'key = value', got {text!r}", line_no)
        if not key or not set(key) <= _BARE_KEY:
            raise TomlError(f"bad key {key!r}", line_no)
        if key in self.current:
            raise TomlError(f"duplicate key {key!r}", line_no)
        rest = rest.strip()
        if not rest:
            raise TomlError(f"key {key!r} has no value", line_no)
        value, trailing = self._parse_value(rest, line_no)
        if trailing.strip():
            raise TomlError(
                f"unexpected trailing text {trailing.strip()!r}",
                self.index + 1,
            )
        self.current[key] = value
        self.linemap[self.prefix + (key,)] = line_no

    def parse(self) -> Tuple[Dict[str, Any], LineMap]:
        while self.index < len(self.lines):
            raw = self.lines[self.index]
            line_no = self.index + 1
            text = _strip_comment(raw).strip()
            if text:
                if text.startswith("["):
                    # Disambiguate table headers from (illegal) top-level
                    # arrays: headers end with ']'.
                    if not text.endswith("]"):
                        raise TomlError(
                            f"cannot parse line {text!r}", line_no
                        )
                    self._enter_table(text, line_no)
                else:
                    self._enter_pair(text, line_no)
            self.index += 1
        return self.data, self.linemap


def parse(source: str) -> Tuple[Dict[str, Any], LineMap]:
    """Parse TOML-subset ``source`` into ``(data, linemap)``.

    Raises :class:`TomlError` (with a 1-based ``line``) on anything the
    subset does not cover or that is malformed.
    """
    return _Parser(source).parse()
