"""DGGT: near real-time NLU-driven natural language programming.

Reproduction of Nan, Shen & Guan, "Enabling Near Real-Time NLU-Driven
Natural Language Programming through Dynamic Grammar Graph-Based
Translation" (CGO 2022).

Quickstart::

    from repro import Synthesizer, load_domain

    domain = load_domain("textediting")
    synth = Synthesizer(domain, engine="dggt")
    print(synth.synthesize("insert ':' at the start of each line").codelet)
"""

from repro.core.dggt import DggtConfig, DggtEngine
from repro.baseline.hisyn import HISynEngine
from repro.domains import available_domains, load_domain
from repro.errors import (
    CacheSnapshotError,
    DomainError,
    GrammarError,
    InvalidExamplesError,
    InvalidRequestError,
    ParseError,
    ReproError,
    SynthesisError,
    SynthesisTimeout,
)
from repro.grammar.path_cache import PathCache
from repro.synthesis.domain import Domain
from repro.synthesis.pipeline import BatchItem, Synthesizer, make_engine
from repro.synthesis.result import SynthesisOutcome, SynthesisStats
from repro.synthesis.stages import (
    ALL_STAGE_NAMES,
    STAGE_NAMES,
    SynthesisContext,
    Trace,
)
from repro.verify import IOExample, VerificationReport

__version__ = "1.0.0"

__all__ = [
    "Synthesizer",
    "Domain",
    "load_domain",
    "available_domains",
    "make_engine",
    "DggtEngine",
    "DggtConfig",
    "HISynEngine",
    "SynthesisOutcome",
    "SynthesisStats",
    "BatchItem",
    "STAGE_NAMES",
    "ALL_STAGE_NAMES",
    "SynthesisContext",
    "Trace",
    "IOExample",
    "VerificationReport",
    "PathCache",
    "ReproError",
    "GrammarError",
    "ParseError",
    "SynthesisError",
    "SynthesisTimeout",
    "InvalidRequestError",
    "InvalidExamplesError",
    "DomainError",
    "CacheSnapshotError",
    "__version__",
]
