"""Input→output example specifications (the multimodal half of a query).

An :class:`IOExample` pairs one input text with the output the user
expects the synthesized codelet to produce on it (PAPERS.md, "Optimal
Neural Program Synthesis from Multimodal Specifications").  Examples ride
the whole stack — library call, batch JSONL, wire protocol — as the same
``{"input": ..., "output": ...}`` shape, validated once here so every
entry point rejects malformed payloads with the stable
``invalid_examples`` code instead of failing mid-verification.

Frozen and slotted: examples cross the process-pool worker pipe attached
to requests, so they must pickle and never mutate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import InvalidExamplesError

#: Hard caps on an examples payload.  They bound the work one request can
#: demand from the verifier (every candidate runs against every example)
#: and the bytes a worker pipe must carry.
MAX_EXAMPLES = 16
MAX_TEXT_BYTES = 65536


@dataclass(frozen=True)
class IOExample:
    """One input→output example; texts are exact (no normalization)."""

    input_text: str
    output_text: str

    def to_json(self) -> Dict[str, str]:
        return {"input": self.input_text, "output": self.output_text}


def _check_text(value: Any, field: str, index: int) -> str:
    if not isinstance(value, str):
        raise InvalidExamplesError(
            f"example {index}: '{field}' must be a string, "
            f"got {type(value).__name__}"
        )
    if len(value.encode("utf-8")) > MAX_TEXT_BYTES:
        raise InvalidExamplesError(
            f"example {index}: '{field}' exceeds {MAX_TEXT_BYTES} bytes"
        )
    return value


def parse_examples(raw: Any) -> Tuple[IOExample, ...]:
    """Validate a wire-format examples payload (a JSON array of
    ``{"input", "output"}`` objects) into :class:`IOExample` records.

    Raises :class:`~repro.errors.InvalidExamplesError` with a precise,
    human-readable message on any malformation — the message is what the
    serving layer returns alongside the ``invalid_examples`` code.
    """
    if not isinstance(raw, (list, tuple)):
        raise InvalidExamplesError(
            "'examples' must be an array of {input, output} objects"
        )
    if len(raw) == 0:
        raise InvalidExamplesError("'examples' must not be empty")
    if len(raw) > MAX_EXAMPLES:
        raise InvalidExamplesError(
            f"'examples' carries {len(raw)} entries; the limit is "
            f"{MAX_EXAMPLES}"
        )
    out = []
    for index, entry in enumerate(raw):
        if isinstance(entry, IOExample):
            out.append(entry)
            continue
        if not isinstance(entry, dict):
            raise InvalidExamplesError(
                f"example {index}: must be an object with 'input' and "
                f"'output' keys, got {type(entry).__name__}"
            )
        unknown = sorted(set(entry) - {"input", "output"})
        if unknown:
            raise InvalidExamplesError(
                f"example {index}: unknown key(s) {unknown}"
            )
        if "input" not in entry or "output" not in entry:
            raise InvalidExamplesError(
                f"example {index}: both 'input' and 'output' are required"
            )
        out.append(
            IOExample(
                input_text=_check_text(entry["input"], "input", index),
                output_text=_check_text(entry["output"], "output", index),
            )
        )
    return tuple(out)


def normalize_examples(
    examples: Optional[Iterable[Any]],
) -> Optional[Tuple[IOExample, ...]]:
    """Library-call convenience: accept IOExamples, ``(input, output)``
    pairs, or wire-shape dicts; None/empty stays None (no verification).
    """
    if examples is None:
        return None
    items = list(examples)
    if not items:
        return None
    coerced = []
    for index, item in enumerate(items):
        if isinstance(item, IOExample):
            coerced.append(item)
        elif isinstance(item, dict):
            coerced.append(item)
        elif isinstance(item, (tuple, list)) and len(item) == 2:
            coerced.append({"input": item[0], "output": item[1]})
        else:
            raise InvalidExamplesError(
                f"example {index}: expected an IOExample, an "
                "(input, output) pair, or an {input, output} dict, "
                f"got {type(item).__name__}"
            )
    return parse_examples(coerced)


def parse_example_arg(text: str) -> IOExample:
    """Parse one CLI ``--example INPUT=OUTPUT`` argument.

    The first unescaped ``=`` splits input from output; ``\\n``, ``\\t``,
    ``\\=`` and ``\\\\`` escapes let multi-line texts ride a shell
    argument (``--example 'aa\\nbb=-aa\\n-bb'``).
    """
    chars = []
    split_at = None
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                chars.append("\n")
            elif nxt == "t":
                chars.append("\t")
            elif nxt in ("=", "\\"):
                chars.append(nxt)
            else:
                chars.append(ch)
                chars.append(nxt)
            i += 2
            continue
        if ch == "=" and split_at is None:
            split_at = len(chars)
            i += 1
            continue
        chars.append(ch)
        i += 1
    if split_at is None:
        raise InvalidExamplesError(
            f"--example needs the form INPUT=OUTPUT (use \\= for a "
            f"literal '='): {text!r}"
        )
    decoded = "".join(chars)
    return IOExample(
        input_text=decoded[:split_at], output_text=decoded[split_at:]
    )
