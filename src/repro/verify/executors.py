"""Per-domain candidate executors behind one registry.

An *executor* turns ``(codelet, input_text)`` into the single observed
output string the verifier compares against an example's expected output.
The registry decouples verification from any particular runtime: a domain
opts into example-based verification by registering an executor under its
registry name (built-ins below cover the three interpreters the repo
ships); a domain without one rejects examples with the stable
``invalid_examples`` code instead of guessing.

Executor contract (docs/verification.md):

* pure function of its two arguments — no filesystem, network, or
  process access (the sandbox enforces this at runtime);
* returns the *canonical* output string for the domain: edited text for
  transforms, newline-joined matches for query-style operations, the
  decimal count for counting operations;
* raises freely on bad candidates — the verifier maps any exception to
  an ``error`` verdict, never a 500.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Optional, Tuple

from repro.errors import InvalidExamplesError

#: (codelet, input_text) -> observed output text.
Executor = Callable[[str, str], str]

#: name -> (executor, warm-up hook or None).
_REGISTRY: Dict[str, Tuple[Executor, Optional[Callable[[], None]]]] = {}
_WARMED: set = set()

#: Outputs larger than this are truncated-as-error by the verifier: a
#: candidate that explodes the document is wrong, not worth shipping
#: megabytes of evidence over the wire.
MAX_OUTPUT_BYTES = 1048576


def register_executor(
    domain_name: str,
    executor: Executor,
    warm: Optional[Callable[[], None]] = None,
) -> None:
    """Register (or replace) the executor for a domain registry name.

    ``warm`` (optional) runs once, outside the sandbox, before the
    executor's first use.  The sandbox blocks *all* filesystem access —
    including first-time module imports — so an executor must finish its
    imports before candidates execute; put lazy imports here.
    """
    key = domain_name.lower()
    _REGISTRY[key] = (executor, warm)
    _WARMED.discard(key)


def get_executor(domain_name: str) -> Executor:
    """The (warmed) executor for a domain; raises
    :class:`~repro.errors.InvalidExamplesError` when the domain has
    none registered (the stable ``invalid_examples`` rejection)."""
    key = domain_name.lower()
    entry = _REGISTRY.get(key)
    if entry is None:
        raise InvalidExamplesError(
            f"domain {domain_name!r} has no registered candidate "
            f"executor; examples are supported on: "
            f"{', '.join(registered_executors()) or '(none)'}"
        )
    executor, warm = entry
    if warm is not None and key not in _WARMED:
        warm()
        _WARMED.add(key)
    return executor


def has_executor(domain_name: str) -> bool:
    return domain_name.lower() in _REGISTRY


def registered_executors() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Built-in executors over the shipped runtime interpreters
# ---------------------------------------------------------------------------


def _root_command(codelet: str) -> str:
    head = codelet.split("(", 1)[0].strip()
    return head


def textediting_executor(codelet: str, input_text: str) -> str:
    """TextEditing: COUNT -> the decimal count, SELECT/PRINT -> the
    newline-joined collected pieces, every edit command -> the edited
    document."""
    from repro.runtime.textedit import execute_codelet

    result = execute_codelet(codelet, input_text)
    command = _root_command(codelet)
    if command == "COUNT":
        return str(result.count if result.count is not None else 0)
    if command in ("SELECT", "PRINT"):
        return "\n".join(result.output)
    return result.text


def stringxform_executor(codelet: str, input_text: str) -> str:
    """StringXform: EXTRACT/SPLITON -> the newline-joined pieces, every
    transform -> the transformed string."""
    from repro.runtime.stringxform import execute_codelet

    result = execute_codelet(codelet, input_text)
    command = _root_command(codelet)
    if command in ("EXTRACT", "SPLITON"):
        return "\n".join(result.output)
    return result.text


def astmatcher_executor(codelet: str, input_text: str) -> str:
    """ASTMatcher: the input is C++ source; the output is one
    ``kind:name`` line per matched node, in traversal order."""
    from repro.runtime.cppast import parse_cpp
    from repro.runtime.matcher_eval import match_codelet

    nodes = match_codelet(codelet, parse_cpp(input_text))
    return "\n".join(f"{node.kind}:{node.name or ''}" for node in nodes)


def _warm_modules(*names: str) -> Callable[[], None]:
    def warm() -> None:
        for name in names:
            importlib.import_module(name)

    return warm


register_executor(
    "textediting",
    textediting_executor,
    warm=_warm_modules("repro.runtime.textedit"),
)
register_executor(
    "stringxform",
    stringxform_executor,
    warm=_warm_modules("repro.runtime.stringxform"),
)
register_executor(
    "astmatcher",
    astmatcher_executor,
    warm=_warm_modules("repro.runtime.cppast", "repro.runtime.matcher_eval"),
)
