"""Execution-guided verification of synthesized codelets.

Optional input→output examples alongside the NL query (the "multimodal
specification" of PAPERS.md's Ye et al.) turn ranking from a pure
grammar-graph-cost guess into a checked decision: the top-K ranked
codelets execute — sandboxed, deadline-bounded — against every example
through the domain's registered :mod:`executor <repro.verify.executors>`,
and the consistent ones win.  Threaded end-to-end: ``examples=`` on
:meth:`Synthesizer.synthesize`, the batch JSONL ``examples`` key, the
``examples`` wire field on both serving transports, and
``--example INPUT=OUTPUT`` on the CLI.  See docs/verification.md.
"""

from repro.verify.examples import (
    IOExample,
    normalize_examples,
    parse_example_arg,
    parse_examples,
)
from repro.verify.executors import (
    Executor,
    get_executor,
    has_executor,
    register_executor,
    registered_executors,
)
from repro.verify.sandbox import SandboxViolation, run_sandboxed
from repro.verify.verifier import (
    DEFAULT_SLICE_CAP,
    CandidateVerdict,
    VerificationReport,
    verify_candidates,
)

__all__ = [
    "IOExample",
    "normalize_examples",
    "parse_example_arg",
    "parse_examples",
    "Executor",
    "get_executor",
    "has_executor",
    "register_executor",
    "registered_executors",
    "SandboxViolation",
    "run_sandboxed",
    "DEFAULT_SLICE_CAP",
    "CandidateVerdict",
    "VerificationReport",
    "verify_candidates",
]
