"""Sandboxed execution of candidate codelets.

Candidate codelets come out of synthesis over an *untrusted* query, so
verification runs every execution under two fences:

* **wall-clock slice** — the call runs on a daemon worker thread joined
  with a timeout.  A candidate that blows its slice is reported as
  ``timeout`` and the thread abandoned (it stays sandboxed and daemonic,
  so it can never outlive the process or escape the fences below);
* **syscall fence** — a process-wide :func:`sys.addaudithook` hook,
  installed once on first use, rejects filesystem / socket / subprocess
  audit events raised *by sandboxed threads only* (a thread-local flag
  scopes the fence, so the rest of the process is untouched).  Audit
  hooks cannot be uninstalled by design, which is exactly the guarantee
  we want: no codelet execution can ever slip out of the fence.

The interpreters themselves are pure string/regex transforms, so the
fence is defense in depth — it turns "the interpreter should never touch
the filesystem" into a property a test can prove
(tests/test_verify.py::test_sandbox_blocks_filesystem).
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ReproError


class SandboxViolation(ReproError):
    """A sandboxed execution attempted a fenced operation (file, socket,
    or subprocess access)."""


#: Audit events rejected inside the sandbox: exact names.
_BLOCKED_EVENTS = frozenset({
    "open",
    "os.system",
    "os.remove",
    "os.rename",
    "os.rmdir",
    "os.mkdir",
    "os.truncate",
    "os.link",
    "os.symlink",
    "os.chmod",
    "os.chown",
    "os.fork",
    "os.forkpty",
    "os.posix_spawn",
    "shutil.rmtree",
    "shutil.move",
    "shutil.copyfile",
    "tempfile.mkstemp",
    "tempfile.mkdtemp",
})

#: ...and whole families, matched by prefix.
_BLOCKED_PREFIXES = ("socket.", "subprocess.", "os.exec", "os.spawn",
                     "ftplib.", "smtplib.", "urllib.", "http.client.")

_state = threading.local()
_hook_installed = False
_install_lock = threading.Lock()


def _audit_hook(event: str, args: Any) -> None:
    if not getattr(_state, "active", False):
        return
    if event in _BLOCKED_EVENTS or event.startswith(_BLOCKED_PREFIXES):
        raise SandboxViolation(
            f"sandboxed codelet execution attempted {event!r}"
        )


def _ensure_hook() -> None:
    """Install the process-wide audit hook exactly once."""
    global _hook_installed
    if _hook_installed:
        return
    with _install_lock:
        if not _hook_installed:
            sys.addaudithook(_audit_hook)
            _hook_installed = True


def sandbox_active() -> bool:
    """Whether the calling thread is currently inside the fence."""
    return bool(getattr(_state, "active", False))


@dataclass
class SandboxResult:
    """Outcome of one fenced call."""

    status: str  # "ok" | "timeout" | "error"
    value: Any = None
    error: Optional[BaseException] = None
    elapsed_seconds: float = 0.0


def run_sandboxed(
    fn: Callable[[], Any], timeout_seconds: Optional[float]
) -> SandboxResult:
    """Run ``fn`` on a fenced daemon thread with a wall-clock slice.

    ``timeout_seconds=None`` means no slice (trusted callers only, e.g.
    pack validation); the syscall fence still applies.  Exceptions —
    :class:`SandboxViolation` included — are captured, never raised: the
    verifier turns them into per-candidate verdicts.
    """
    _ensure_hook()
    started = time.monotonic()
    box: dict = {}

    def body() -> None:
        _state.active = True
        try:
            box["value"] = fn()
        except BaseException as exc:  # a bad candidate must never escape
            box["error"] = exc
        finally:
            _state.active = False

    worker = threading.Thread(
        target=body, name="repro-verify-sandbox", daemon=True
    )
    worker.start()
    worker.join(timeout_seconds)
    elapsed = time.monotonic() - started
    if worker.is_alive():
        # Abandon the thread: it is daemonic and stays fenced (its own
        # thread-local flag is still set), so it cannot outlive the
        # process or do anything the fence forbids while it winds down.
        return SandboxResult(status="timeout", elapsed_seconds=elapsed)
    if "error" in box:
        return SandboxResult(
            status="error", error=box["error"], elapsed_seconds=elapsed
        )
    return SandboxResult(
        status="ok", value=box.get("value"), elapsed_seconds=elapsed
    )
