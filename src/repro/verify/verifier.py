"""Execution-guided re-ranking of candidate codelets.

The paper ranks codelets purely by grammar-graph cost, so a
plausible-but-wrong codelet can outrank the correct one whenever the NL
query is ambiguous.  When the request carries input→output examples,
:func:`verify_candidates` closes the loop: every ranked candidate runs —
sandboxed and deadline-bounded — against every example through the
domain's registered executor, and the list is re-ranked
*consistent-first, then original rank* (Desai et al.'s check-against-
examples loop; Ye et al.'s execution-guided pruning).

The verifier never raises for a bad candidate and never blows the
request budget: each candidate gets a wall-clock slice carved from the
remaining :class:`~repro.synthesis.deadline.Deadline`, and when the
budget runs dry mid-verification the report falls back to the unverified
ranking with ``status="deadline_exhausted"`` (remaining candidates are
``skipped``), so a request that synthesized successfully always answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.synthesis.deadline import Deadline
from repro.verify.examples import IOExample
from repro.verify.executors import MAX_OUTPUT_BYTES, Executor
from repro.verify.sandbox import run_sandboxed

#: Ceiling on any one candidate's wall-clock slice (seconds), even under
#: an unlimited deadline: verification is a ranking aid, not a second
#: synthesis budget.
DEFAULT_SLICE_CAP = 1.0

#: Below this remaining budget (seconds) the verifier declares the
#: deadline exhausted instead of starting another candidate.
_MIN_SLICE = 0.002

#: The per-candidate verdict vocabulary (wire format, never rename):
#: ``consistent`` — reproduced every example's output exactly;
#: ``inconsistent`` — executed fine but contradicted some example;
#: ``error`` — execution raised (bad candidate) or overflowed the
#: output cap; ``timeout`` — blew its wall-clock slice; ``skipped`` —
#: the deadline was exhausted before this candidate ran.
VERDICTS = ("consistent", "inconsistent", "error", "timeout", "skipped")


@dataclass(frozen=True)
class CandidateVerdict:
    """The verification outcome for one ranked candidate."""

    rank: int
    codelet: str
    verdict: str
    examples_passed: int = 0
    examples_total: int = 0
    detail: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rank": self.rank,
            "codelet": self.codelet,
            "verdict": self.verdict,
            "examples_passed": self.examples_passed,
            "examples_total": self.examples_total,
        }
        if self.detail is not None:
            out["detail"] = self.detail
        return out


@dataclass(frozen=True)
class VerificationReport:
    """Everything verification decided for one request.

    ``order`` lists the original ranks in final (post-re-rank) order;
    ``winner_rank`` is ``order[0]`` — the original rank of the codelet
    the request now answers with; ``reranked`` flags whether it differs
    from the cost-ranked winner.  Frozen and picklable: reports ride
    outcomes over the process-pool worker pipe.
    """

    status: str  # "verified" | "deadline_exhausted"
    verdicts: Tuple[CandidateVerdict, ...]
    order: Tuple[int, ...]
    winner_rank: int
    reranked: bool
    examples: int
    elapsed_seconds: float = 0.0
    notes: Tuple[str, ...] = ()

    @property
    def consistent_ranks(self) -> Tuple[int, ...]:
        return tuple(
            v.rank for v in self.verdicts if v.verdict == "consistent"
        )

    def verdict_for(self, rank: int) -> Optional[CandidateVerdict]:
        for verdict in self.verdicts:
            if verdict.rank == rank:
                return verdict
        return None

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": self.status,
            "examples": self.examples,
            "winner_rank": self.winner_rank,
            "reranked": self.reranked,
            "order": list(self.order),
            "elapsed_ms": round(self.elapsed_seconds * 1000.0, 3),
            "verdicts": [v.to_json() for v in self.verdicts],
        }
        if self.notes:
            out["notes"] = list(self.notes)
        return out


def _candidate_slice(
    deadline: Deadline, candidates_left: int, cap: float
) -> Optional[float]:
    """The wall-clock slice for the next candidate: its fair share of the
    remaining budget, capped.  None signals exhaustion."""
    if deadline.budget_seconds is None:
        return cap
    remaining = deadline.budget_seconds - deadline.elapsed
    if remaining <= _MIN_SLICE:
        return None
    return min(cap, remaining / max(1, candidates_left))


def _execute_candidate(
    executor: Executor,
    codelet: str,
    examples: Sequence[IOExample],
    slice_seconds: Optional[float],
    rank: int,
) -> CandidateVerdict:
    """Run one candidate against every example inside its slice."""
    import time

    total = len(examples)
    passed = 0
    started = time.monotonic()
    for example in examples:
        budget = None
        if slice_seconds is not None:
            budget = slice_seconds - (time.monotonic() - started)
            if budget <= 0:
                return CandidateVerdict(
                    rank, codelet, "timeout", passed, total,
                    detail="wall-clock slice exhausted",
                )
        result = run_sandboxed(
            lambda ex=example: executor(codelet, ex.input_text), budget
        )
        if result.status == "timeout":
            return CandidateVerdict(
                rank, codelet, "timeout", passed, total,
                detail="wall-clock slice exhausted",
            )
        if result.status == "error":
            return CandidateVerdict(
                rank, codelet, "error", passed, total,
                detail=f"{type(result.error).__name__}: {result.error}",
            )
        observed = result.value
        if not isinstance(observed, str):
            return CandidateVerdict(
                rank, codelet, "error", passed, total,
                detail="executor returned a non-string output",
            )
        if len(observed.encode("utf-8")) > MAX_OUTPUT_BYTES:
            return CandidateVerdict(
                rank, codelet, "error", passed, total,
                detail=f"output exceeds the {MAX_OUTPUT_BYTES}-byte cap",
            )
        if observed != example.output_text:
            return CandidateVerdict(
                rank, codelet, "inconsistent", passed, total,
                detail=(
                    f"example {passed}: expected "
                    f"{_clip(example.output_text)!r}, observed "
                    f"{_clip(observed)!r}"
                ),
            )
        passed += 1
    return CandidateVerdict(rank, codelet, "consistent", passed, total)


def _clip(text: str, limit: int = 80) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def verify_candidates(
    executor: Executor,
    ranked: Sequence[Tuple[int, str]],
    examples: Sequence[IOExample],
    deadline: Deadline,
    *,
    slice_cap: float = DEFAULT_SLICE_CAP,
) -> VerificationReport:
    """Verify ``ranked`` — ``(original_rank, codelet)`` pairs, best first
    — against ``examples`` and compute the re-ranked order.

    Consistent candidates sort ahead of everything else; ties (and all
    non-consistent candidates among themselves) keep their original
    cost-based order, so with zero consistent candidates the ranking is
    unchanged.  Deadline exhaustion mid-run keeps the unverified order
    entirely (``status="deadline_exhausted"``, a note says where it
    stopped) — verification can only ever improve an answer, never
    destroy one.
    """
    import time

    started = time.monotonic()
    verdicts: List[CandidateVerdict] = []
    notes: List[str] = []
    exhausted = False
    for index, (rank, codelet) in enumerate(ranked):
        slice_seconds = _candidate_slice(
            deadline, len(ranked) - index, slice_cap
        )
        if slice_seconds is None:
            exhausted = True
            notes.append(
                f"deadline exhausted after {index} of {len(ranked)} "
                "candidates; falling back to unverified ranking"
            )
            verdicts.extend(
                CandidateVerdict(r, c, "skipped", 0, len(examples))
                for r, c in ranked[index:]
            )
            break
        verdicts.append(
            _execute_candidate(
                executor, codelet, examples, slice_seconds, rank
            )
        )

    original_order = tuple(rank for rank, _ in ranked)
    if exhausted:
        order = original_order
    else:
        by_rank = {v.rank: v for v in verdicts}
        order = tuple(
            sorted(
                original_order,
                key=lambda r: (
                    0 if by_rank[r].verdict == "consistent" else 1,
                    r,
                ),
            )
        )
    winner = order[0] if order else 1
    return VerificationReport(
        status="deadline_exhausted" if exhausted else "verified",
        verdicts=tuple(verdicts),
        order=order,
        winner_rank=winner,
        reranked=bool(order) and order[0] != original_order[0],
        examples=len(examples),
        elapsed_seconds=time.monotonic() - started,
        notes=tuple(notes),
    )
