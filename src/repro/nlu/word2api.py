"""WordToAPI matching (paper Step-3).

For every content node of the pruned dependency graph, find the domain APIs
that may semantically match it "by matching the query words with the
descriptions of each API via NLU techniques".  The produced *WordToAPI map*
feeds EdgeToPath (Step-4): each candidate API becomes a path-search endpoint,
so the candidate count per word is exactly the paper's ``p_l`` factor in both
engines' complexity.

Scoring (deterministic, strongest first):

1. **name match** — Dice overlap between the word/phrase's canonical tokens
   and the API's canonical name tokens (synonym + abbreviation aware);
2. **description match** — half-weight Dice overlap against the description
   keyword set;
3. **similarity fallback** — edit/prefix similarity against name tokens,
   0.4-weight, for near-miss spellings.

Candidates below ``min_score`` are dropped, the rest ranked by (score desc,
name asc) and capped at ``max_candidates``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nlp.lemmatizer import lemmatize
from repro.nlu.docs import ApiDocument
from repro.nlu.similarity import token_similarity
from repro.nlu.synonyms import SynonymTable


#: Auxiliary name tokens stripped from multi-token API names before
#: comparison (they appear in nearly every predicate name).
_GENERIC_TOKENS = frozenset({"has", "have", "is", "be"})


@dataclass(frozen=True)
class ApiCandidate:
    """One candidate API for a query word, with its evidence."""

    name: str
    score: float
    source: str  # "name" | "description" | "similarity"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ApiCandidate({self.name}, {self.score:.2f}, {self.source})"


@dataclass(frozen=True)
class MatchConfig:
    """Tunables of the matcher; defaults mirror a ``p_l`` of a few
    candidates per word, as in the paper's complexity discussion."""

    max_candidates: int = 6
    min_score: float = 0.45
    description_weight: float = 0.5
    # 0.55 so a near-perfect fallback (>= similarity_floor) clears
    # min_score but still ranks below any real name/synonym match.
    similarity_weight: float = 0.55
    similarity_floor: float = 0.85  # token similarity needed for fallback


class WordToApiMatcher:
    """Matches pruned-dependency-graph words against a domain's APIs."""

    def __init__(
        self,
        document: ApiDocument,
        synonyms: SynonymTable,
        config: Optional[MatchConfig] = None,
    ):
        self.document = document
        self.synonyms = synonyms
        self.config = config or MatchConfig()
        # Precompute canonical-set token views of every API once per domain.
        # Canonicalization is set-valued (a word may sit in several synonym
        # groups); two tokens match when their sets intersect.
        self._name_sets: Dict[str, Tuple[frozenset, ...]] = {}
        self._name_raw: Dict[str, Tuple[str, ...]] = {}
        self._keyword_sets: Dict[str, Tuple[frozenset, ...]] = {}
        for entry in document:
            # Name tokens are lemmatized and abbreviation-expanded so they
            # compare symmetrically with query lemmas ("contains"/"contain",
            # "exprs"/"expression").  Generic auxiliary tokens ("has", "is")
            # carry no lexical information — ``hasType`` means *type* — so
            # they are stripped from multi-token names before comparison.
            raw = tuple(
                dict.fromkeys(
                    synonyms.expand(lemmatize(synonyms.expand(t)))
                    for t in entry.resolved_name_tokens()
                )
            )
            if len(raw) > 1:
                stripped = tuple(t for t in raw if t not in _GENERIC_TOKENS)
                raw = stripped or raw
            self._name_raw[entry.name] = raw
            self._name_sets[entry.name] = tuple(
                synonyms.canonical_set(t) for t in raw
            )
            self._keyword_sets[entry.name] = tuple(
                synonyms.canonical_set(k)
                for k in dict.fromkeys(entry.keywords())
            )
        self._cache: Dict[str, List[ApiCandidate]] = {}

    # ------------------------------------------------------------------

    def _phrase_views(
        self, phrase: str
    ) -> Tuple[Tuple[str, ...], Tuple[frozenset, ...]]:
        raw = tuple(
            dict.fromkeys(
                self.synonyms.expand(tok) for tok in phrase.lower().split()
            )
        )
        return raw, tuple(self.synonyms.canonical_set(t) for t in raw)

    @staticmethod
    def _overlap_dice(
        a_sets: Sequence[frozenset], b_sets: Sequence[frozenset]
    ) -> float:
        """Dice coefficient generalized to set-valued tokens: a token on one
        side counts as matched when it intersects any token of the other."""
        if not a_sets or not b_sets:
            return 0.0
        matched_a = sum(1 for s in a_sets if any(s & t for t in b_sets))
        matched_b = sum(1 for t in b_sets if any(s & t for s in a_sets))
        return (matched_a + matched_b) / (len(a_sets) + len(b_sets))

    def _similarity_score(
        self, phrase_tokens: Sequence[str], name_tokens: Sequence[str]
    ) -> float:
        """Best-pair token similarity, gated by the floor."""
        best = 0.0
        for p in phrase_tokens:
            for n in name_tokens:
                best = max(best, token_similarity(p, n))
        return best if best >= self.config.similarity_floor else 0.0

    def candidates(self, phrase: str) -> List[ApiCandidate]:
        """Ranked candidate APIs for a word or merged phrase (lemmas,
        space-separated)."""
        cached = self._cache.get(phrase)
        if cached is not None:
            return list(cached)

        phrase_raw, phrase_sets = self._phrase_views(phrase)
        results: List[ApiCandidate] = []
        for name in self.document.names():
            name_score = self._overlap_dice(phrase_sets, self._name_sets[name])
            desc_score = (
                self._overlap_dice(phrase_sets, self._keyword_sets[name])
                * self.config.description_weight
            )
            sim_score = (
                self._similarity_score(phrase_raw, self._name_raw[name])
                * self.config.similarity_weight
            )
            score, source = max(
                (name_score, "name"),
                (desc_score, "description"),
                (sim_score, "similarity"),
            )
            if score >= self.config.min_score:
                results.append(ApiCandidate(name, round(score, 4), source))

        results.sort(key=lambda c: (-c.score, c.name))
        trimmed = results[: self.config.max_candidates]
        self._cache[phrase] = trimmed
        return list(trimmed)

    def candidate_names(self, phrase: str) -> List[str]:
        return [c.name for c in self.candidates(phrase)]


WordToApiMap = Dict[int, List[ApiCandidate]]


def build_word_to_api_map(graph, matcher: WordToApiMatcher) -> WordToApiMap:
    """The paper's *WordToAPI map*: pruned-graph node id -> candidates.

    Literal nodes (quoted strings, numerals) are left out — the domain binds
    them to literal-slot APIs separately (see ``Domain.literal_apis``).
    """
    mapping: WordToApiMap = {}
    for node in graph.nodes():
        if node.is_literal:
            continue
        mapping[node.node_id] = matcher.candidates(node.lemma)
    return mapping
