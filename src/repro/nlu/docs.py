"""API document model (the second synthesizer input, paper Sec. II).

An NLU-driven synthesizer reads "a document that contains all the APIs and
their descriptions" — e.g. the Clang ASTMatcher reference.  This module
models that document: each :class:`ApiDoc` holds the function name, its
human-readable description, and the *name tokens* used for matching
(camel-case names split automatically; all-caps DSL names supply explicit
tokens, e.g. ``STARTFROM`` -> ``["start", "from"]``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import DomainError
from repro.nlp.lemmatizer import lemmatize

_WORD_RE = re.compile(r"[a-z]+")

_CAMEL_RE = re.compile(
    r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z]+|[A-Z]+|[0-9]+"
)

#: Stop words excluded from description keyword sets.
_STOPWORDS = frozenset(
    """a an the of to in on for with and or that which this is are be by as
       at it its from can will matches match given matching node nodes
       specified""".split()
)


def split_name(name: str) -> List[str]:
    """Split an API name into lowercase word tokens.

    Works for camelCase (``cxxConstructExpr`` -> cxx/construct/expr) and
    snake_case; all-caps single-word names come back whole (domains give
    explicit tokens for fused names like ``STARTFROM``).
    """
    parts: List[str] = []
    for chunk in re.split(r"[_\-\s]+", name):
        if not chunk:
            continue
        parts.extend(m.group(0).lower() for m in _CAMEL_RE.finditer(chunk))
    return parts or [name.lower()]


@dataclass(frozen=True)
class ApiDoc:
    """One API entry of a domain document.

    Attributes
    ----------
    name:
        The API function name exactly as it appears in codelets.
    description:
        One or two sentences of reference documentation; its content words
        become matching keywords.
    name_tokens:
        Explicit word split of the name; default: :func:`split_name`.
    category:
        Optional grouping used by Table I and the docs.
    """

    name: str
    description: str
    name_tokens: Tuple[str, ...] = ()
    category: str = ""

    def resolved_name_tokens(self) -> Tuple[str, ...]:
        if self.name_tokens:
            return tuple(t.lower() for t in self.name_tokens)
        return tuple(split_name(self.name))

    def keywords(self) -> Tuple[str, ...]:
        """Lemmatized content words of the description (deduplicated,
        document order).  Uses a plain word regex — description prose may
        contain apostrophes and punctuation the query tokenizer treats
        specially."""
        seen = []
        for word in _WORD_RE.findall(self.description.lower()):
            if word in _STOPWORDS:
                continue
            lemma = lemmatize(word)
            if lemma not in _STOPWORDS and lemma not in seen:
                seen.append(lemma)
        return tuple(seen)


class ApiDocument:
    """The full API document of one domain."""

    def __init__(self, entries: Iterable[ApiDoc]):
        self._entries: Dict[str, ApiDoc] = {}
        for entry in entries:
            if entry.name in self._entries:
                raise DomainError(f"duplicate API entry {entry.name!r}")
            self._entries[entry.name] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ApiDoc]:
        return iter(self._entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> ApiDoc:
        try:
            return self._entries[name]
        except KeyError:
            raise DomainError(f"no API named {name!r} in document") from None

    def names(self) -> List[str]:
        return list(self._entries)

    def categories(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for entry in self._entries.values():
            out.setdefault(entry.category or "(uncategorized)", []).append(
                entry.name
            )
        return out

    def validate_against(self, api_names: Iterable[str]) -> None:
        """Check the document covers exactly the grammar's API terminals."""
        expected = set(api_names)
        have = set(self._entries)
        missing = expected - have
        extra = have - expected
        problems = []
        if missing:
            problems.append(f"APIs missing from document: {sorted(missing)[:8]}")
        if extra:
            problems.append(f"document entries not in grammar: {sorted(extra)[:8]}")
        if problems:
            raise DomainError("; ".join(problems))
