"""String similarity primitives for the WordToAPI matcher (Step-3 fallback).

Exact lemma/synonym matching is the primary signal; edit-distance similarity
is the last-resort tie between a query word and an API name token (catching
spelling variants like "numeral"/"numerals" that survive lemmatization or
user typos like "charcter").
"""

from __future__ import annotations

from typing import Sequence


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance, iterative two-row DP."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[i] + 1,      # deletion
                    current[i - 1] + 1,   # insertion
                    previous[i - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def similarity_ratio(a: str, b: str) -> float:
    """Normalized similarity in [0, 1]: 1 - distance / max_len."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def prefix_similarity(a: str, b: str) -> float:
    """Common-prefix share — API name tokens are often truncations
    ("expr" vs "expression")."""
    if not a or not b:
        return 0.0
    n = 0
    for ca, cb in zip(a, b):
        if ca != cb:
            break
        n += 1
    return n / max(len(a), len(b))


def token_similarity(a: str, b: str) -> float:
    """Similarity between two single tokens: the max of edit-ratio and
    prefix share, so both typos and truncations score high."""
    return max(similarity_ratio(a, b), prefix_similarity(a, b))


def dice_overlap(set_a: Sequence[str], set_b: Sequence[str]) -> float:
    """Dice coefficient over token multisets (order-insensitive)."""
    if not set_a or not set_b:
        return 0.0
    sa, sb = set(set_a), set(set_b)
    return 2.0 * len(sa & sb) / (len(sa) + len(sb))
