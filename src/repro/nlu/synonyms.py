"""Synonym and abbreviation knowledge for WordToAPI matching (Step-3).

The NLU-driven approach leans on general lexical knowledge rather than
labeled examples (paper Sec. I, Fig. 2).  HISyn consults WordNet; offline we
embed the slice of lexical knowledge the query genre needs:

* **synonym groups** — words users say interchangeably ("insert", "add",
  "append" all intend insertion);
* **abbreviation map** — API-name tokens are often truncations of English
  words (``expr`` for *expression*, ``decl`` for *declaration*); both sides
  normalize to a canonical token before comparison.

Domains may extend both tables at registration time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

#: Words that mean the same thing in this genre.  Each inner tuple is one
#: group; the first member is the canonical form.
_SYNONYM_GROUPS: Tuple[Tuple[str, ...], ...] = (
    # intent verbs
    ("insert", "add", "append", "prepend", "put", "place", "attach"),
    ("delete", "remove", "erase", "drop", "cut", "strip", "clear", "trim"),
    ("replace", "substitute", "swap", "change"),
    ("select", "highlight", "pick", "mark", "choose"),
    ("copy", "duplicate"),
    ("find", "search", "locate", "look", "detect", "identify", "match",
     "list", "show", "get", "retrieve", "fetch", "collect", "report",
     "give"),
    ("print", "output", "display"),
    ("move", "shift"),
    # relational verbs
    ("contain", "include", "hold", "carry", "descendant", "nest"),
    ("start", "begin", "beginning", "front", "head"),
    ("end", "finish", "tail", "ending"),
    ("name", "call", "title"),
    ("declaration", "declare", "define", "definition"),
    ("derive", "inherit", "extend"),
    ("use", "refer", "reference"),
    ("occur", "appear"),
    # text units
    ("string", "text", "phrase"),
    ("line", "row"),
    ("word",),
    ("character", "char", "letter", "symbol"),
    ("number", "numeral", "digit", "integer"),
    ("sentence",),
    ("paragraph", "passage"),
    ("document", "file", "buffer"),
    ("position", "location", "place", "spot", "offset"),
    ("occurrence", "instance", "appearance"),
    ("space", "whitespace"),
    # quantifiers
    ("all", "every", "each", "any"),
    ("empty", "blank"),
    # code units
    ("expression",),
    ("statement",),
    ("declaration",),
    ("function", "routine"),
    ("method",),
    ("constructor",),
    ("destructor",),
    ("class", "struct", "record"),
    ("field", "member", "attribute"),
    ("variable", "var"),
    ("parameter",),
    ("argument",),
    ("operator",),
    ("literal", "constant"),
    ("loop",),
    ("type",),
    ("float", "floating"),
    ("pointer",),
    ("template",),
    ("namespace",),
    ("base", "parent"),
    ("body",),
    ("condition", "conditional"),
    ("cast", "conversion"),
    ("value",),
)

#: API-name token -> canonical English word.  Applied to *both* sides of a
#: comparison, so "expr" in an API name meets "expression" in a query.
_ABBREVIATIONS: Dict[str, str] = {
    "expr": "expression",
    "exprs": "expression",
    "decl": "declaration",
    "decls": "declaration",
    "stmt": "statement",
    "stmts": "statement",
    "arg": "argument",
    "args": "argument",
    "param": "parameter",
    "params": "parameter",
    "parm": "parameter",
    "parms": "parameter",
    "func": "function",
    "fn": "function",
    "var": "variable",
    "vars": "variable",
    "op": "operator",
    "ops": "operator",
    "ref": "reference",
    "refs": "reference",
    "init": "initializer",
    "cond": "condition",
    "num": "number",
    "char": "character",
    "chars": "character",
    "str": "string",
    "doc": "document",
    "pos": "position",
    "iter": "iteration",
    "bool": "boolean",
    "ctor": "constructor",
    "dtor": "destructor",
    "spec": "specifier",
    "ns": "namespace",
    "temp": "template",
    "construct": "constructor",
    "subscripting": "subscript",
    "elem": "element",
    "attr": "attribute",
    "loc": "location",
    "bcondition": "condition",
    "bcond": "condition",
}


class SynonymTable:
    """Canonicalization service: lemma -> set of canonical group labels.

    A word may belong to *several* groups (English is like that: "place" is
    both an insertion verb and a position noun), so canonicalization is
    set-valued and two words *match* when their canonical sets intersect.
    The table is cheap to copy and extend, so each domain owns its own
    instance.
    """

    def __init__(
        self,
        groups: Optional[Iterable[Tuple[str, ...]]] = None,
        abbreviations: Optional[Dict[str, str]] = None,
    ):
        self._membership: Dict[str, Set[str]] = {}
        self._groups: Dict[str, Tuple[str, ...]] = {}
        self._abbrev: Dict[str, str] = dict(_ABBREVIATIONS)
        if abbreviations:
            self._abbrev.update(abbreviations)
        for group in groups if groups is not None else _SYNONYM_GROUPS:
            self.add_group(group)

    def add_group(self, group: Tuple[str, ...]) -> None:
        """Register a synonym group; the first member labels the group."""
        if not group:
            return
        label = group[0]
        members = self._groups.get(label, ())
        self._groups[label] = tuple(dict.fromkeys(members + tuple(group)))
        for word in group:
            self._membership.setdefault(word, set()).add(label)

    def add_abbreviation(self, short: str, full: str) -> None:
        self._abbrev[short.lower()] = full.lower()

    def expand(self, token: str) -> str:
        """Expand an abbreviation to its full word (identity if none)."""
        return self._abbrev.get(token.lower(), token.lower())

    def canonical_set(self, word: str) -> FrozenSet[str]:
        """Group labels of ``word`` (after abbreviation expansion); the word
        itself when it belongs to no group."""
        expanded = self.expand(word)
        labels = self._membership.get(expanded)
        return frozenset(labels) if labels else frozenset((expanded,))

    def canonical(self, word: str) -> str:
        """A single representative label (smallest group label), for callers
        that need a scalar key."""
        return min(self.canonical_set(word))

    def same(self, a: str, b: str) -> bool:
        return bool(self.canonical_set(a) & self.canonical_set(b))

    def group_of(self, word: str) -> Set[str]:
        members: Set[str] = {self.expand(word)}
        for label in self.canonical_set(word):
            members.update(self._groups.get(label, ()))
        return members


def default_synonyms() -> SynonymTable:
    """A fresh table with the built-in genre knowledge."""
    return SynonymTable()
