"""NLU layer: API documents, lexical knowledge, WordToAPI matching (Step-3).

In the staged pipeline (:mod:`repro.synthesis.stages`), the matcher here
backs the ``word_to_api`` stage: :func:`build_word_to_api_map` is what
``WordToApiStage`` runs (via the problem builder) to turn pruned query
words into ranked API candidates.
"""

from repro.nlu.docs import ApiDoc, ApiDocument, split_name
from repro.nlu.similarity import (
    dice_overlap,
    levenshtein,
    prefix_similarity,
    similarity_ratio,
    token_similarity,
)
from repro.nlu.synonyms import SynonymTable, default_synonyms
from repro.nlu.word2api import (
    ApiCandidate,
    MatchConfig,
    WordToApiMap,
    WordToApiMatcher,
    build_word_to_api_map,
)

__all__ = [
    "ApiDoc",
    "ApiDocument",
    "split_name",
    "SynonymTable",
    "default_synonyms",
    "levenshtein",
    "similarity_ratio",
    "prefix_similarity",
    "token_similarity",
    "dice_overlap",
    "ApiCandidate",
    "MatchConfig",
    "WordToApiMatcher",
    "WordToApiMap",
    "build_word_to_api_map",
]
