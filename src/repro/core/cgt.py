"""Code generation trees (CGTs) — paper Sec. IV-A.

"If after the candidate paths of all dependency edges are fused (by merging
common nodes and edges), they form a tree, we call the tree a code generation
tree (CGT).  By definition, a CGT is a subgraph of the CFG [grammar graph].
A CGT can hence be reformatted into a grammar-valid codelet in the DSL."

A :class:`CGT` here is exactly that: a set of grammar-graph edges (the node
set is implied), plus *literal bindings* — the query's quoted strings and
numerals assigned to the grammar's literal-slot nodes, so Step-6 can emit
``STRING(":")`` rather than an empty placeholder.

Both engines build CGTs the same way (:meth:`CGT.from_paths`); they differ
only in *which* path combinations they materialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.grammar.graph import GrammarGraph, NodeKind
from repro.grammar.paths import GrammarPath

Edge = Tuple[str, str]


def merge_bindings(
    base: Mapping[str, str], extra: Mapping[str, str]
) -> Optional[Dict[str, str]]:
    """Merge two literal-binding maps; ``None`` on conflict.

    A conflict means two different query literals would occupy the same
    grammar literal slot (e.g. both strings of a *replace* query landing in
    ``src_val``) — such a merge cannot represent the query and the
    combination must be discarded.
    """
    merged = dict(base)
    for key, value in extra.items():
        existing = merged.get(key)
        if existing is not None and existing != value:
            return None
        merged[key] = value
    return merged


@dataclass(frozen=True)
class CGT:
    """An immutable merged-path tree over a grammar graph.

    Invariants are *checked*, not assumed: use :meth:`is_tree` and
    :meth:`or_conflicts` before treating a merge result as a valid CGT —
    HISyn merges first and discards invalid results, which is part of what
    makes it slow.
    """

    edges: FrozenSet[Edge]
    bindings: Mapping[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_paths(
        cls,
        paths: Iterable[GrammarPath],
        bindings: Optional[Mapping[str, str]] = None,
    ) -> "CGT":
        """Fuse paths by merging common nodes and edges."""
        edges: Set[Edge] = set()
        for path in paths:
            edges.update(path.edges())
        return cls(frozenset(edges), dict(bindings or {}))

    def merged_with(self, other: "CGT") -> "CGT":
        merged_bindings = dict(self.bindings)
        merged_bindings.update(other.bindings)
        return CGT(self.edges | other.edges, merged_bindings)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def nodes(self) -> Set[str]:
        out: Set[str] = set()
        for src, dst in self.edges:
            out.add(src)
            out.add(dst)
        return out

    def children(self, node_id: str) -> List[str]:
        return [dst for src, dst in self.edges if src == node_id]

    def parents(self, node_id: str) -> List[str]:
        return [src for src, dst in self.edges if dst == node_id]

    def roots(self) -> List[str]:
        nodes = self.nodes()
        have_parent = {dst for _src, dst in self.edges}
        return sorted(n for n in nodes if n not in have_parent)

    def root(self) -> Optional[str]:
        roots = self.roots()
        return roots[0] if len(roots) == 1 else None

    def is_tree(self) -> bool:
        """Single root, every other node has exactly one parent, connected."""
        nodes = self.nodes()
        if not nodes:
            return False
        roots = self.roots()
        if len(roots) != 1:
            return False
        parent_count: Dict[str, int] = {}
        for _src, dst in self.edges:
            parent_count[dst] = parent_count.get(dst, 0) + 1
            if parent_count[dst] > 1:
                return False
        # connectivity: |E| == |V| - 1 with single root and <=1 parent each
        return len(self.edges) == len(nodes) - 1

    # ------------------------------------------------------------------
    # Grammar validity & size
    # ------------------------------------------------------------------

    def or_conflicts(self, graph: GrammarGraph) -> List[Tuple[str, List[str]]]:
        """Choice non-terminals taking two or more alternatives in this tree
        (grammar-incorrect: alternatives are mutually exclusive)."""
        conflicts = []
        adjacency: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
        groups = graph.or_group_map
        for nt_id, kids in adjacency.items():
            alternatives = groups.get(nt_id)
            if alternatives is None or len(kids) < 2:
                continue
            present = [a for a in kids if a in alternatives]
            if len(present) >= 2:
                conflicts.append((nt_id, sorted(present)))
        return conflicts

    def is_grammar_valid(self, graph: GrammarGraph) -> bool:
        return self.is_tree() and not self.or_conflicts(graph)

    def api_count(self, graph: GrammarGraph) -> int:
        """Number of API nodes in the CGT (reporting measure)."""
        return sum(
            1 for n in self.nodes() if graph.node(n).kind is NodeKind.API
        )

    def weighted_size(self, graph: GrammarGraph) -> int:
        """Semantic weight of the CGT: ordinary APIs count 1, generic APIs
        count 0 — the objective both engines minimize (the paper's "smallest
        CGT" with "minimum unmentioned semantic")."""
        return sum(graph.api_weight(n) for n in self.nodes())

    def api_names(self, graph: GrammarGraph) -> List[str]:
        return sorted(
            graph.node(n).label
            for n in self.nodes()
            if graph.node(n).kind is NodeKind.API
        )

    # ------------------------------------------------------------------
    # Ordering helper for deterministic tie-breaks
    # ------------------------------------------------------------------

    def sort_key(self, graph: GrammarGraph) -> Tuple[int, int, Tuple[Edge, ...]]:
        """(weighted size, |edges|, canonical edge list) — both engines break
        size ties with this key so their outputs coincide."""
        return (
            self.weighted_size(graph),
            len(self.edges),
            tuple(sorted(self.edges)),
        )

    def describe(self, graph: GrammarGraph) -> str:
        lines = []
        for src, dst in sorted(self.edges):
            lines.append(f"{graph.node(src).label} -> {graph.node(dst).label}")
        return "\n".join(lines)
