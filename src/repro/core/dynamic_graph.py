"""The dynamic grammar graph (paper Sec. IV-B.1, Fig. 5).

Node kinds map one-to-one to the paper's:

* ``N_start`` — the single start node (we key it ``(VIRTUAL, <grammar start>)``);
* ``N_API`` — one node per (dependency word, candidate endpoint) pair.  The
  paper keys these by API name alone because its example has no collisions;
  keying by the dependency node too is the same structure, made safe for
  queries where two words map to the same API;
* ``N_PCGT`` — one node per surviving path combination of a sibling-edge
  group (the ellipses of Fig. 5).

Every node carries the paper's two memo fields: ``min_size`` (size of the
optimal partial CGT from the start to this node) and ``min_cgt`` (the
partial CGT itself, stored as its grammar-graph edge set plus literal
bindings).  Updates keep the lexicographically smallest edge set among
equal-size options so DGGT's tie-breaking matches the baseline's.

Edge kinds (path edges carrying grammar-path ids, zero-length auxiliary
edges) exist implicitly in the provenance recorded per offer; the
explicit backtrack of Algorithm 1's last line is trivial here because each
node memoizes its full optimal partial CGT.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.compat import slotted_dataclass
from repro.core.cgt import merge_bindings
from repro.errors import SynthesisError
from repro.grammar.graph import GrammarGraph
from repro.grammar.interning import GraphInterner
from repro.synthesis.problem import CandidatePath, EndpointCandidate

Edge = Tuple[str, str]
DynKey = Tuple[int, str]

#: Dependency-node id of the virtual governor (the paper's start node).
VIRTUAL = -1


@slotted_dataclass()
class DynNode:
    """One dynamic-grammar-graph node with its memo fields.

    ``min_rank`` is the summed Step-3 rank of the endpoints chosen in the
    optimal partial CGT — the secondary objective after size, so that among
    equally small trees the better-matching APIs win deterministically.
    Slotted: the legacy engine allocates one per offer.
    """

    key: DynKey
    kind: str  # "start" | "api" | "literal" | "pcgt"
    min_size: int
    min_rank: int
    min_edges: FrozenSet[Edge]
    min_bindings: Mapping[str, str]
    provenance: str = ""

    def tie_key(self) -> Tuple[int, int, int, Tuple[Edge, ...]]:
        return (
            self.min_size,
            self.min_rank,
            len(self.min_edges),
            tuple(sorted(self.min_edges)),
        )


class DynamicGrammarGraph:
    """Memo table for optimal partial CGTs, built bottom-up by DGGT."""

    def __init__(self, graph: GrammarGraph):
        self.graph = graph
        self._nodes: Dict[DynKey, DynNode] = {}
        self._pcgt_counter = 0
        self.n_pcgt_nodes = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def has(self, key: DynKey) -> bool:
        return key in self._nodes

    def node(self, key: DynKey) -> DynNode:
        try:
            return self._nodes[key]
        except KeyError:
            raise SynthesisError(f"no dynamic-graph node {key!r}") from None

    def min_size(self, key: DynKey) -> int:
        return self.node(key).min_size

    def keys(self) -> List[DynKey]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _offer(
        self,
        key: DynKey,
        kind: str,
        size: int,
        rank: int,
        edges: FrozenSet[Edge],
        bindings: Mapping[str, str],
        provenance: str,
    ) -> None:
        """Install (size, rank, partial CGT) at ``key`` if it beats the memo."""
        candidate = DynNode(key, kind, size, rank, edges, dict(bindings), provenance)
        current = self._nodes.get(key)
        if current is None or candidate.tie_key() < current.tie_key():
            self._nodes[key] = candidate

    def _partial_valid(self, edges: FrozenSet[Edge], root_id: str) -> bool:
        """A partial CGT must itself be a tree rooted at ``root_id`` with no
        "or" conflicts.  Joining a level's paths with memoized subtrees can
        violate this through *cross-level prefix overlap* (the pathology
        Sec. V-B discusses); rejecting the join here lets the next-best
        option win instead of poisoning the memo."""
        if not edges:
            return True
        parents: Dict[str, int] = {}
        children: Dict[str, List[str]] = {}
        for src, dst in edges:
            parents[dst] = parents.get(dst, 0) + 1
            if parents[dst] > 1:
                return False
            children.setdefault(src, []).append(dst)
        if root_id in parents:
            return False
        groups = self.graph.or_group_map
        for nt_id, kids in children.items():
            alternatives = groups.get(nt_id)
            if alternatives is None or len(kids) < 2:
                continue
            taken = sum(1 for k in kids if k in alternatives)
            if taken >= 2:
                return False
        return True

    def add_leaf(self, dep_id: int, candidate: EndpointCandidate) -> DynKey:
        """A leaf word's endpoint: size 1 for an API, 0 for a literal slot
        (the paper omits the fields of min_size-0 nodes in Fig. 5)."""
        key = (dep_id, candidate.node_id)
        kind = "literal" if candidate.is_literal else "api"
        # An endpoint a query word resolved to always weighs 1 — only
        # *unmentioned* interior generics are free.
        size = 0 if candidate.is_literal else 1
        self._offer(key, kind, size, candidate.rank, frozenset(), {}, "leaf")
        return key

    def offer_path(
        self,
        gov_dep_id: int,
        cp: CandidatePath,
        pred_key: DynKey,
    ) -> Optional[DynKey]:
        """Case I (Algorithm 1 lines 5-11): extend the predecessor's optimal
        partial CGT with one grammar path.  Returns ``None`` (no update) on
        a literal-binding conflict."""
        pred = self.node(pred_key)
        size = cp.path.size(self.graph) + pred.min_size
        rank = cp.src_candidate.rank + pred.min_rank
        edges = pred.min_edges | frozenset(cp.path.edges())
        bound = cp.binding()
        bindings = merge_bindings(
            pred.min_bindings, {bound[0]: bound[1]} if bound else {}
        )
        if bindings is None:
            return None
        if not self._partial_valid(edges, cp.src):
            return None
        key = (gov_dep_id, cp.src)
        self._offer(key, "api", size, rank, edges, bindings, f"path {cp.path_id}")
        return key

    def add_pcgt(
        self,
        gov_dep_id: int,
        src_node_id: str,
        combo: Sequence[CandidatePath],
        leaf_keys: Sequence[DynKey],
        tree_cost: int,
        gov_rank: int = 0,
    ) -> Optional[DynKey]:
        """Case II (lines 13-22): a partial-CGT node for one surviving
        combination, then an auxiliary edge to the combination's root API.
        Returns ``None`` (no node) on a literal-binding conflict."""
        tree_edges: set = set()
        bindings: Optional[Dict[str, str]] = {}
        for cp in combo:
            tree_edges.update(cp.path.edges())
            bound = cp.binding()
            if bound is not None:
                bindings = merge_bindings(bindings, {bound[0]: bound[1]})
                if bindings is None:
                    return None
        total = tree_cost
        total_rank = gov_rank
        for leaf in leaf_keys:
            pred = self.node(leaf)
            total += pred.min_size
            total_rank += pred.min_rank
            tree_edges.update(pred.min_edges)
            bindings = merge_bindings(bindings, pred.min_bindings)
            if bindings is None:
                return None

        if not self._partial_valid(frozenset(tree_edges), src_node_id):
            return None
        self._pcgt_counter += 1
        self.n_pcgt_nodes += 1
        pcgt_key = (gov_dep_id, f"pcgt:{self._pcgt_counter}")
        combo_ids = ",".join(cp.path_id for cp in combo)
        frozen = frozenset(tree_edges)
        self._offer(
            pcgt_key, "pcgt", total, total_rank, frozen, bindings,
            f"combo {combo_ids}",
        )
        # Auxiliary edge: the PCGT feeds its root API's endpoint node.
        self._offer(
            (gov_dep_id, src_node_id),
            "api",
            total,
            total_rank,
            frozen,
            bindings,
            f"pcgt {combo_ids}",
        )
        return pcgt_key

    # ------------------------------------------------------------------
    # Result extraction (the backtrack of Algorithm 1 line 23)
    # ------------------------------------------------------------------

    def optimal(
        self, key: DynKey
    ) -> Tuple[FrozenSet[Edge], Dict[str, str], int, int]:
        """(edges, bindings, min_size, min_rank) of the optimal partial CGT
        at ``key``."""
        node = self.node(key)
        return node.min_edges, dict(node.min_bindings), node.min_size, node.min_rank

    def describe(self) -> str:
        lines = []
        for key in sorted(self._nodes, key=str):
            node = self._nodes[key]
            lines.append(
                f"{key}: kind={node.kind} min_size={node.min_size} "
                f"({node.provenance})"
            )
        return "\n".join(lines)


class InternedDynamicGraph:
    """Flat-array memo table for the interned DGGT engine.

    The legacy :class:`DynamicGrammarGraph` keys a dict of :class:`DynNode`
    objects by ``(dep id, node-id string)`` and re-sorts string edge sets
    on every tie comparison.  Here a ``DynKey`` interns to a single int —
    ``(dep_id + 1) * n + node_int`` (``+1`` folds ``VIRTUAL == -1`` into
    slot 0) — mapping to a *slot* in parallel arrays:

    ``_size``/``_rank``   the memo's two objectives;
    ``_emask``/``_dmask``/``_onmask``
                          the optimal partial CGT in the interner's
                          bitmask algebra (edges / children / taken choice
                          non-terminals).  Edge unions are single bigint
                          ORs and validity checks are popcounts; the
                          sorted edge-code tuple the legacy tie-break
                          compares is only materialized on a full
                          (size, rank, edge count) tie, which is rare.
    ``_bind``             literal bindings keyed by interned node int.
                          Binding dicts are treated as immutable and
                          shared between slots when a merge adds nothing.

    PCGT nodes are *counted* (``n_pcgt_nodes``) but not stored: the legacy
    engine keys each one uniquely, so the stored node never participates
    in another offer — only its auxiliary edge to the root API does.
    """

    __slots__ = (
        "interner",
        "n",
        "_slot",
        "_size",
        "_rank",
        "_emask",
        "_dmask",
        "_onmask",
        "_bind",
        "_etup",
        "n_pcgt_nodes",
    )

    def __init__(self, interner: GraphInterner):
        self.interner = interner
        self.n = interner.n
        self._slot: Dict[int, int] = {}
        self._size: List[int] = []
        self._rank: List[int] = []
        self._emask: List[int] = []
        self._dmask: List[int] = []
        self._onmask: List[int] = []
        self._bind: List[Dict[int, str]] = []
        # edge mask -> its sorted edge-code tuple (tie-break comparisons)
        self._etup: Dict[int, Tuple[int, ...]] = {}
        self.n_pcgt_nodes = 0

    # ------------------------------------------------------------------
    # Accessors (tests / extraction; the engine reads the arrays directly)
    # ------------------------------------------------------------------

    def key_int(self, dep_id: int, node_int: int) -> int:
        return (dep_id + 1) * self.n + node_int

    def has(self, dep_id: int, node_int: int) -> bool:
        return (dep_id + 1) * self.n + node_int in self._slot

    def __len__(self) -> int:
        return len(self._slot)

    def optimal(
        self, dep_id: int, node_int: int
    ) -> Tuple[FrozenSet[Edge], Dict[str, str], int, int]:
        """(edges, bindings, min_size, min_rank) decoded back to grammar
        node-id strings — the backtrack of Algorithm 1 line 23."""
        slot = self._slot.get((dep_id + 1) * self.n + node_int)
        if slot is None:
            raise SynthesisError(
                f"no dynamic-graph node ({dep_id}, {node_int})"
            )
        interner = self.interner
        decode_edge = interner.decode_edge
        node_ids = interner.node_ids
        edges = frozenset(
            decode_edge(code)
            for code in interner.edge_codes_of_mask(self._emask[slot])
        )
        bindings = {
            node_ids[k]: v for k, v in self._bind[slot].items()
        }
        return edges, bindings, self._size[slot], self._rank[slot]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _edges_tuple(self, em: int) -> Tuple[int, ...]:
        """Sorted edge codes of a mask, memoized — only full tie-breaks
        and test accessors need the tuple form."""
        cached = self._etup.get(em)
        if cached is None:
            codes = self.interner.edge_codes_of_mask(em)
            codes.sort()
            cached = tuple(codes)
            self._etup[em] = cached
        return cached

    def offer(
        self,
        key_int: int,
        size: int,
        rank: int,
        emask: int,
        dmask: int,
        onmask: int,
        bindings: Dict[int, str],
    ) -> None:
        """Install (size, rank, partial CGT) at ``key_int`` if it beats
        the memo — the legacy ``tie_key`` comparison with the cheap
        components decided first.  Edge counts come from popcounts; the
        sorted-tuple comparison (int-code order == string edge-pair
        order) only happens on a full tie between distinct edge sets."""
        slot = self._slot.get(key_int)
        if slot is None:
            self._slot[key_int] = len(self._size)
            self._size.append(size)
            self._rank.append(rank)
            self._emask.append(emask)
            self._dmask.append(dmask)
            self._onmask.append(onmask)
            self._bind.append(bindings)
            return
        cur_size = self._size[slot]
        if size > cur_size:
            return
        if size == cur_size:
            cur_rank = self._rank[slot]
            if rank > cur_rank:
                return
            if rank == cur_rank:
                cur_emask = self._emask[slot]
                if emask == cur_emask:
                    return
                n_new = emask.bit_count()
                n_cur = cur_emask.bit_count()
                if n_new > n_cur:
                    return
                if n_new == n_cur and self._edges_tuple(
                    emask
                ) >= self._edges_tuple(cur_emask):
                    return
        self._size[slot] = size
        self._rank[slot] = rank
        self._emask[slot] = emask
        self._dmask[slot] = dmask
        self._onmask[slot] = onmask
        self._bind[slot] = bindings

    def partial_valid(self, emask: int, dmask: int, onmask: int, root_int: int) -> bool:
        """The legacy ``_partial_valid`` in the bitmask algebra: a partial
        CGT must have one parent per child (``|edges| == |children|`` —
        any doubled child makes the edge count exceed the distinct-child
        count), must not make the root a child, and may take at most one
        alternative per choice non-terminal (a second taken or-edge under
        one non-terminal raises the or-edge popcount above the taken
        non-terminal popcount)."""
        if not emask:
            return True
        if emask.bit_count() != dmask.bit_count():
            return False
        if (dmask >> root_int) & 1:
            return False
        om = emask & self.interner.or_edge_mask
        return om.bit_count() == onmask.bit_count()

    def add_leaf(self, dep_id: int, candidate: EndpointCandidate) -> None:
        """A leaf word's endpoint: size 1 for an API, 0 for a literal
        slot.  Endpoints outside the grammar are skipped — they could
        never be a path's sink, so the legacy node they would create is
        unreachable."""
        node_int = self.interner.index.get(candidate.node_id)
        if node_int is None:
            return
        size = 0 if candidate.is_literal else 1
        self.offer(
            (dep_id + 1) * self.n + node_int,
            size,
            candidate.rank,
            0,
            0,
            0,
            _EMPTY_BINDINGS,
        )

    def offer_path(
        self,
        gov_dep_id: int,
        cp: CandidatePath,
        enc: Tuple[int, ...],
        pred_slot: int,
    ) -> None:
        """Case I in int space: extend the predecessor slot's optimal
        partial CGT with one grammar path (no update on a literal-binding
        conflict or an invalid join, exactly like the legacy path)."""
        interner = self.interner
        size = interner.size_of_enc(enc) + self._size[pred_slot]
        rank = cp.src_candidate.rank + self._rank[pred_slot]
        em, _nm, dm, onm, _all = interner.enc_masks(enc)
        em |= self._emask[pred_slot]
        dm |= self._dmask[pred_slot]
        onm |= self._onmask[pred_slot]

        pred_bind = self._bind[pred_slot]
        bound = cp.binding()
        if bound is None:
            bindings = pred_bind
        else:
            lit_int = interner.index[bound[0]]
            existing = pred_bind.get(lit_int)
            if existing is None:
                bindings = dict(pred_bind)
                bindings[lit_int] = bound[1]
            elif existing != bound[1]:
                return
            else:
                bindings = pred_bind
        if not self.partial_valid(em, dm, onm, enc[0]):
            return
        self.offer(
            (gov_dep_id + 1) * self.n + enc[0],
            size,
            rank,
            em,
            dm,
            onm,
            bindings,
        )

    def add_pcgt(
        self,
        gov_dep_id: int,
        gov_int: int,
        path_masks: Tuple[int, int, int],
        combo_paths: Sequence[CandidatePath],
        pred_slots: Sequence[int],
        tree_cost: int,
        gov_rank: int,
    ) -> bool:
        """Case II in int space: one surviving combination joined with its
        memoized subtrees, offered along the auxiliary edge to the root
        API.  ``path_masks`` is the combination's already-folded
        ``(em, dm, onm)`` — the caller has the per-path masks in hand from
        its merge-validity check, so refolding here would be pure waste.
        Returns False (no node) on a binding conflict or an invalid
        join — the same short-circuit order as the legacy version."""
        interner = self.interner
        em, dm, onm = path_masks
        bindings: Dict[int, str] = {}
        for cp in combo_paths:
            bound = cp.binding()
            if bound is not None:
                lit_int = interner.index[bound[0]]
                existing = bindings.get(lit_int)
                if existing is not None and existing != bound[1]:
                    return False
                bindings[lit_int] = bound[1]
        total = tree_cost
        total_rank = gov_rank
        for pred_slot in pred_slots:
            total += self._size[pred_slot]
            total_rank += self._rank[pred_slot]
            em |= self._emask[pred_slot]
            dm |= self._dmask[pred_slot]
            onm |= self._onmask[pred_slot]
            for lit_int, value in self._bind[pred_slot].items():
                existing = bindings.get(lit_int)
                if existing is not None and existing != value:
                    return False
                bindings[lit_int] = value

        if not self.partial_valid(em, dm, onm, gov_int):
            return False
        self.n_pcgt_nodes += 1
        self.offer(
            (gov_dep_id + 1) * self.n + gov_int,
            total,
            total_rank,
            em,
            dm,
            onm,
            bindings,
        )
        return True


#: Shared empty-bindings dict for leaves.  Binding dicts are immutable by
#: convention (merges always copy), so sharing one instance is safe.
_EMPTY_BINDINGS: Dict[int, str] = {}
