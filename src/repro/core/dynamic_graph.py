"""The dynamic grammar graph (paper Sec. IV-B.1, Fig. 5).

Node kinds map one-to-one to the paper's:

* ``N_start`` — the single start node (we key it ``(VIRTUAL, <grammar start>)``);
* ``N_API`` — one node per (dependency word, candidate endpoint) pair.  The
  paper keys these by API name alone because its example has no collisions;
  keying by the dependency node too is the same structure, made safe for
  queries where two words map to the same API;
* ``N_PCGT`` — one node per surviving path combination of a sibling-edge
  group (the ellipses of Fig. 5).

Every node carries the paper's two memo fields: ``min_size`` (size of the
optimal partial CGT from the start to this node) and ``min_cgt`` (the
partial CGT itself, stored as its grammar-graph edge set plus literal
bindings).  Updates keep the lexicographically smallest edge set among
equal-size options so DGGT's tie-breaking matches the baseline's.

Edge kinds (path edges carrying grammar-path ids, zero-length auxiliary
edges) exist implicitly in the provenance recorded per offer; the
explicit backtrack of Algorithm 1's last line is trivial here because each
node memoizes its full optimal partial CGT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.cgt import merge_bindings
from repro.errors import SynthesisError
from repro.grammar.graph import GrammarGraph
from repro.synthesis.problem import CandidatePath, EndpointCandidate

Edge = Tuple[str, str]
DynKey = Tuple[int, str]

#: Dependency-node id of the virtual governor (the paper's start node).
VIRTUAL = -1


@dataclass
class DynNode:
    """One dynamic-grammar-graph node with its memo fields.

    ``min_rank`` is the summed Step-3 rank of the endpoints chosen in the
    optimal partial CGT — the secondary objective after size, so that among
    equally small trees the better-matching APIs win deterministically.
    """

    key: DynKey
    kind: str  # "start" | "api" | "literal" | "pcgt"
    min_size: int
    min_rank: int
    min_edges: FrozenSet[Edge]
    min_bindings: Mapping[str, str]
    provenance: str = ""

    def tie_key(self) -> Tuple[int, int, int, Tuple[Edge, ...]]:
        return (
            self.min_size,
            self.min_rank,
            len(self.min_edges),
            tuple(sorted(self.min_edges)),
        )


class DynamicGrammarGraph:
    """Memo table for optimal partial CGTs, built bottom-up by DGGT."""

    def __init__(self, graph: GrammarGraph):
        self.graph = graph
        self._nodes: Dict[DynKey, DynNode] = {}
        self._pcgt_counter = 0
        self.n_pcgt_nodes = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def has(self, key: DynKey) -> bool:
        return key in self._nodes

    def node(self, key: DynKey) -> DynNode:
        try:
            return self._nodes[key]
        except KeyError:
            raise SynthesisError(f"no dynamic-graph node {key!r}") from None

    def min_size(self, key: DynKey) -> int:
        return self.node(key).min_size

    def keys(self) -> List[DynKey]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _offer(
        self,
        key: DynKey,
        kind: str,
        size: int,
        rank: int,
        edges: FrozenSet[Edge],
        bindings: Mapping[str, str],
        provenance: str,
    ) -> None:
        """Install (size, rank, partial CGT) at ``key`` if it beats the memo."""
        candidate = DynNode(key, kind, size, rank, edges, dict(bindings), provenance)
        current = self._nodes.get(key)
        if current is None or candidate.tie_key() < current.tie_key():
            self._nodes[key] = candidate

    def _partial_valid(self, edges: FrozenSet[Edge], root_id: str) -> bool:
        """A partial CGT must itself be a tree rooted at ``root_id`` with no
        "or" conflicts.  Joining a level's paths with memoized subtrees can
        violate this through *cross-level prefix overlap* (the pathology
        Sec. V-B discusses); rejecting the join here lets the next-best
        option win instead of poisoning the memo."""
        if not edges:
            return True
        parents: Dict[str, int] = {}
        children: Dict[str, List[str]] = {}
        for src, dst in edges:
            parents[dst] = parents.get(dst, 0) + 1
            if parents[dst] > 1:
                return False
            children.setdefault(src, []).append(dst)
        if root_id in parents:
            return False
        groups = self.graph.or_group_map
        for nt_id, kids in children.items():
            alternatives = groups.get(nt_id)
            if alternatives is None or len(kids) < 2:
                continue
            taken = sum(1 for k in kids if k in alternatives)
            if taken >= 2:
                return False
        return True

    def add_leaf(self, dep_id: int, candidate: EndpointCandidate) -> DynKey:
        """A leaf word's endpoint: size 1 for an API, 0 for a literal slot
        (the paper omits the fields of min_size-0 nodes in Fig. 5)."""
        key = (dep_id, candidate.node_id)
        kind = "literal" if candidate.is_literal else "api"
        # An endpoint a query word resolved to always weighs 1 — only
        # *unmentioned* interior generics are free.
        size = 0 if candidate.is_literal else 1
        self._offer(key, kind, size, candidate.rank, frozenset(), {}, "leaf")
        return key

    def offer_path(
        self,
        gov_dep_id: int,
        cp: CandidatePath,
        pred_key: DynKey,
    ) -> Optional[DynKey]:
        """Case I (Algorithm 1 lines 5-11): extend the predecessor's optimal
        partial CGT with one grammar path.  Returns ``None`` (no update) on
        a literal-binding conflict."""
        pred = self.node(pred_key)
        size = cp.path.size(self.graph) + pred.min_size
        rank = cp.src_candidate.rank + pred.min_rank
        edges = pred.min_edges | frozenset(cp.path.edges())
        bound = cp.binding()
        bindings = merge_bindings(
            pred.min_bindings, {bound[0]: bound[1]} if bound else {}
        )
        if bindings is None:
            return None
        if not self._partial_valid(edges, cp.src):
            return None
        key = (gov_dep_id, cp.src)
        self._offer(key, "api", size, rank, edges, bindings, f"path {cp.path_id}")
        return key

    def add_pcgt(
        self,
        gov_dep_id: int,
        src_node_id: str,
        combo: Sequence[CandidatePath],
        leaf_keys: Sequence[DynKey],
        tree_cost: int,
        gov_rank: int = 0,
    ) -> Optional[DynKey]:
        """Case II (lines 13-22): a partial-CGT node for one surviving
        combination, then an auxiliary edge to the combination's root API.
        Returns ``None`` (no node) on a literal-binding conflict."""
        tree_edges: set = set()
        bindings: Optional[Dict[str, str]] = {}
        for cp in combo:
            tree_edges.update(cp.path.edges())
            bound = cp.binding()
            if bound is not None:
                bindings = merge_bindings(bindings, {bound[0]: bound[1]})
                if bindings is None:
                    return None
        total = tree_cost
        total_rank = gov_rank
        for leaf in leaf_keys:
            pred = self.node(leaf)
            total += pred.min_size
            total_rank += pred.min_rank
            tree_edges.update(pred.min_edges)
            bindings = merge_bindings(bindings, pred.min_bindings)
            if bindings is None:
                return None

        if not self._partial_valid(frozenset(tree_edges), src_node_id):
            return None
        self._pcgt_counter += 1
        self.n_pcgt_nodes += 1
        pcgt_key = (gov_dep_id, f"pcgt:{self._pcgt_counter}")
        combo_ids = ",".join(cp.path_id for cp in combo)
        frozen = frozenset(tree_edges)
        self._offer(
            pcgt_key, "pcgt", total, total_rank, frozen, bindings,
            f"combo {combo_ids}",
        )
        # Auxiliary edge: the PCGT feeds its root API's endpoint node.
        self._offer(
            (gov_dep_id, src_node_id),
            "api",
            total,
            total_rank,
            frozen,
            bindings,
            f"pcgt {combo_ids}",
        )
        return pcgt_key

    # ------------------------------------------------------------------
    # Result extraction (the backtrack of Algorithm 1 line 23)
    # ------------------------------------------------------------------

    def optimal(
        self, key: DynKey
    ) -> Tuple[FrozenSet[Edge], Dict[str, str], int, int]:
        """(edges, bindings, min_size, min_rank) of the optimal partial CGT
        at ``key``."""
        node = self.node(key)
        return node.min_edges, dict(node.min_bindings), node.min_size, node.min_rank

    def describe(self) -> str:
        lines = []
        for key in sorted(self._nodes, key=str):
            node = self._nodes[key]
            lines.append(
                f"{key}: kind={node.kind} min_size={node.min_size} "
                f"({node.provenance})"
            )
        return "\n".join(lines)
