"""The paper's primary contribution: DGGT and its optimizations."""

from repro.core.cgt import CGT
from repro.core.dggt import DggtConfig, DggtEngine
from repro.core.dynamic_graph import VIRTUAL, DynamicGrammarGraph, DynNode
from repro.core.expression import (
    Expr,
    cgt_to_expression,
    direct_api_children,
    normalize_codelet,
    parse_expression,
    validate_expression,
)
from repro.core.grammar_pruning import (
    combination_conflicts,
    conflict_pairs_for,
    prune_combinations,
)
from repro.core.orphan import candidate_governors, relocation_variants
from repro.core.size_pruning import (
    SizedCombination,
    bound_combination,
    exact_tree_cost,
    prune_by_size,
)

__all__ = [
    "CGT",
    "DggtEngine",
    "DggtConfig",
    "DynamicGrammarGraph",
    "DynNode",
    "VIRTUAL",
    "Expr",
    "cgt_to_expression",
    "parse_expression",
    "normalize_codelet",
    "validate_expression",
    "direct_api_children",
    "conflict_pairs_for",
    "combination_conflicts",
    "prune_combinations",
    "relocation_variants",
    "candidate_governors",
    "SizedCombination",
    "bound_combination",
    "prune_by_size",
    "exact_tree_cost",
]
