"""Orphan node relocation (paper Sec. V-B).

An *orphan* is a dependent whose dependency edge has no candidate grammar
path — "it implies that n_i is not the 'real' governor of n_j".  Instead of
HISyn's root-attachment (all paths from the grammar start: expensive and a
source of cross-level prefixes that break DGGT's optimality assumption),
relocation consults the grammar graph: if some other word's candidate API is
a grammar-graph *ancestor* of the orphan's candidate API, that word is a
plausible governor, and the orphan is re-attached beneath it.

"Since an orphan node could have several candidate APIs, there could be many
valid locations ... the algorithm creates different pruned dependency graphs
and synthesizes them separately.  The smallest CGT is chosen from all these
pruned dependency graphs" — hence :func:`relocation_variants` returns a list
of problems and the engine keeps the best result.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Tuple

from repro.synthesis.problem import SynthesisProblem

#: Dependency relation label for relocated edges.
RELOCATED_REL = "reloc"


def candidate_governors(
    problem: SynthesisProblem, orphan: int
) -> List[int]:
    """Dependency nodes whose candidate APIs are grammar-graph ancestors of
    some candidate of the orphan.  Ordered root-ward first (shallowest
    depth), then by node id, for determinism."""
    graph = problem.domain.graph
    dep = problem.dep_graph
    orphan_targets = [c.node_id for c in problem.candidates.get(orphan, ())]
    excluded = dep.descendants(orphan) | {orphan}
    found: List[int] = []
    for node in dep.nodes():
        nid = node.node_id
        if nid in excluded:
            continue
        for gov_cand in problem.candidates.get(nid, ()):
            if gov_cand.is_literal:
                continue
            if any(
                graph.is_ancestor(gov_cand.node_id, t) for t in orphan_targets
            ):
                found.append(nid)
                break
    found.sort(key=lambda n: (dep.depth(n), n))
    return found


def relocation_variants(
    problem: SynthesisProblem,
    max_variants: int = 16,
) -> Tuple[List[SynthesisProblem], int]:
    """Build the dependency-graph variants produced by orphan relocation.

    Returns ``(variants, n_orphans)``.  Orphans with no plausible governor
    keep their broken edge (the engine falls back to root-attachment for
    them).  Without orphans the original problem is returned unchanged.
    """
    orphans = problem.orphan_nodes()
    if not orphans:
        return [problem], 0

    choice_lists: List[List[Optional[int]]] = []
    for orphan in orphans:
        governors = candidate_governors(problem, orphan)
        choice_lists.append([g for g in governors] or [None])

    variants: List[SynthesisProblem] = []
    for assignment in product(*choice_lists):
        if len(variants) >= max_variants:
            break
        new_graph = problem.dep_graph.copy()
        ok = True
        for orphan, governor in zip(orphans, assignment):
            if governor is None:
                continue  # unplaceable: engine root-attaches it
            try:
                new_graph.reattach(orphan, governor, RELOCATED_REL)
            except Exception:
                ok = False  # e.g. relocation would create a cycle
                break
        if ok:
            variants.append(problem.with_dep_graph(new_graph))
    if not variants:
        variants = [problem]
    return variants, len(orphans)
