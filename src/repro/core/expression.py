"""TreeToExpression (paper Step-6) and codelet utilities.

Step-6 "finds the smallest CGT, traverses it in a depth-first order, and puts
the API contained in the nodes together to form the final expression.  The
children of a node are regarded as parameters of the API in their parent
node."

This module provides:

* :class:`Expr` — the codelet AST (API applications and literal arguments);
* :func:`cgt_to_expression` — the depth-first emission from a CGT;
* :func:`parse_expression` — a re-parser for codelet text (tests re-parse
  every emitted codelet; the harness normalizes ground truths through it);
* :func:`validate_expression` — checks a codelet against the grammar graph
  (every argument API must be a *direct API child* of its parent API, i.e.
  reachable without crossing another API node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.errors import SynthesisError
from repro.core.cgt import CGT
from repro.grammar.graph import GrammarGraph, NodeKind


@dataclass(frozen=True)
class Expr:
    """A codelet AST node.

    Either an API application (``is_literal`` false; ``name`` is the API,
    ``args`` its parameters) or a literal argument (``is_literal`` true;
    ``name`` is the raw value).
    """

    name: str
    args: Tuple["Expr", ...] = ()
    is_literal: bool = False

    def render(self) -> str:
        if self.is_literal:
            return f'"{self.name}"'
        inner = ", ".join(a.render() for a in self.args)
        return f"{self.name}({inner})"

    def apis(self) -> List[str]:
        """All API names in the expression (preorder)."""
        if self.is_literal:
            return []
        out = [self.name]
        for a in self.args:
            out.extend(a.apis())
        return out

    def literals(self) -> List[str]:
        if self.is_literal:
            return [self.name]
        out: List[str] = []
        for a in self.args:
            out.extend(a.literals())
        return out

    def size(self) -> int:
        """Number of API applications."""
        return len(self.apis())

    def __str__(self) -> str:
        return self.render()


# ----------------------------------------------------------------------
# CGT -> expression
# ----------------------------------------------------------------------


def cgt_to_expression(cgt: CGT, graph: GrammarGraph) -> Expr:
    """Depth-first emission of the codelet encoded by a CGT.

    Children of each node follow the grammar's declaration order (the order
    of successor edges in the grammar graph), so argument order matches the
    DSL signature.
    """
    root = cgt.root()
    if root is None:
        raise SynthesisError("CGT has no unique root; cannot emit a codelet")

    cgt_children: Dict[str, Set[str]] = {}
    for src, dst in cgt.edges:
        cgt_children.setdefault(src, set()).add(dst)

    def ordered_children(node_id: str) -> List[str]:
        present = cgt_children.get(node_id, set())
        ordered = [e.dst for e in graph.successors(node_id) if e.dst in present]
        # Defensive: include any CGT child the grammar order missed.
        ordered.extend(sorted(present - set(ordered)))
        return ordered

    def collect(node_id: str, on_path: Set[str]) -> List[Expr]:
        if node_id in on_path:
            raise SynthesisError("cycle in CGT during expression emission")
        node = graph.node(node_id)
        on_path = on_path | {node_id}
        if node.kind is NodeKind.LITERAL:
            value = cgt.bindings.get(node_id)
            if value is None:
                return []  # unbound literal slot: omitted argument
            return [Expr(value, (), is_literal=True)]
        child_exprs: List[Expr] = []
        for child in ordered_children(node_id):
            child_exprs.extend(collect(child, on_path))
        if node.kind is NodeKind.API:
            return [Expr(node.label, tuple(child_exprs))]
        return child_exprs

    top = collect(root, set())
    if len(top) != 1:
        raise SynthesisError(
            f"CGT emitted {len(top)} top-level expressions; expected exactly 1"
        )
    return top[0]


# ----------------------------------------------------------------------
# Codelet text re-parser
# ----------------------------------------------------------------------


class _ExprScanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> SynthesisError:
        return SynthesisError(
            f"codelet parse error at {self.pos}: {message} in {self.text!r}"
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, ch: str) -> None:
        self.skip_ws()
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}, found {self.peek()!r}")
        self.pos += 1

    def parse(self) -> Expr:
        self.skip_ws()
        expr = self.parse_expr()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing text after codelet")
        return expr

    def parse_expr(self) -> Expr:
        self.skip_ws()
        ch = self.peek()
        if ch == '"':
            return self.parse_quoted()
        name = self.parse_name()
        self.skip_ws()
        if self.peek() != "(":
            # Bare unquoted literal (numbers, symbols in legacy notation).
            return Expr(name, (), is_literal=True)
        self.expect("(")
        args: List[Expr] = []
        self.skip_ws()
        if self.peek() != ")":
            args.append(self.parse_expr())
            self.skip_ws()
            while self.peek() == ",":
                self.pos += 1
                args.append(self.parse_expr())
                self.skip_ws()
        self.expect(")")
        return Expr(name, tuple(args))

    def parse_quoted(self) -> Expr:
        self.expect('"')
        end = self.text.find('"', self.pos)
        if end < 0:
            raise self.error("unclosed string literal")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return Expr(value, (), is_literal=True)

    def parse_name(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_"
        ):
            self.pos += 1
        if self.pos == start:
            # single-symbol literal such as * or :
            if self.pos < len(self.text) and self.text[self.pos] not in "(),":
                self.pos += 1
                return self.text[start : self.pos]
            raise self.error("expected a name")
        return self.text[start : self.pos]


def parse_expression(text: str) -> Expr:
    """Parse codelet text back into an :class:`Expr` tree."""
    return _ExprScanner(text).parse()


def normalize_codelet(text: str) -> str:
    """Canonical rendering of codelet text (whitespace/quoting neutral).

    The accuracy metric compares normalized forms, implementing the paper's
    criterion: identical set of APIs, arguments, and relative order.
    """
    return parse_expression(text).render()


# ----------------------------------------------------------------------
# Grammar validation of codelets
# ----------------------------------------------------------------------


def direct_api_children(graph: GrammarGraph, api_node_id: str) -> Set[str]:
    """Labels of API/literal nodes reachable from an API without crossing
    another API node — the legal direct arguments of that API."""
    out: Set[str] = set()
    seen: Set[str] = set()
    frontier = [e.dst for e in graph.successors(api_node_id)]
    while frontier:
        node_id = frontier.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        node = graph.node(node_id)
        if node.kind in (NodeKind.API, NodeKind.LITERAL):
            out.add(node.label)
            continue  # do not cross API/literal boundaries
        frontier.extend(e.dst for e in graph.successors(node_id))
    return out


def validate_expression(expr: Expr, graph: GrammarGraph) -> List[str]:
    """Check a codelet against the grammar graph; returns a list of
    violations (empty = valid).

    Rules: the top API must be derivable from the grammar start; every
    argument (API or literal) must be a direct API child of its parent.
    """
    problems: List[str] = []
    if expr.is_literal:
        return [f"top-level literal {expr.name!r} is not a codelet"]
    if not graph.has_api(expr.name):
        return [f"unknown API {expr.name!r}"]
    top_id = graph.api_node(expr.name).node_id
    if top_id not in graph.descendants(graph.start_id):
        problems.append(f"API {expr.name!r} not derivable from grammar start")

    def walk(node: Expr) -> None:
        if node.is_literal:
            return
        if not graph.has_api(node.name):
            problems.append(f"unknown API {node.name!r}")
            return
        legal = direct_api_children(graph, graph.api_node(node.name).node_id)
        for arg in node.args:
            if arg.is_literal:
                literal_slots = {
                    label
                    for label in legal
                    if not graph.has_api(label)
                }
                if not literal_slots:
                    problems.append(
                        f"API {node.name!r} takes no literal argument "
                        f"(got {arg.name!r})"
                    )
            elif arg.name not in legal:
                problems.append(
                    f"{arg.name!r} is not a legal argument of {node.name!r}"
                )
            walk(arg)

    walk(expr)
    return problems
