"""Dynamic grammar graph-based translation — the paper's Algorithm 1.

DGGT replaces HISyn's exhaustive Step-5 with dynamic programming:

1. **Bottom-up dynamic grammar graph generation** — traverse the pruned
   dependency graph from the deepest level up.  An edge without siblings
   (Case I) extends each predecessor's memoized optimal partial CGT by one
   grammar path; sibling edges (Case II) enumerate the combinations of their
   candidate paths *within the level only*, filtered by grammar-based
   pruning (Sec. V-A) and size-based pruning (Sec. V-C), and each surviving
   combination becomes a partial-CGT node.
2. **Optimal CGT backtrack** — the node at the grammar start holds the
   optimal CGT; emit the codelet from it.

Per-level work is ``O(p_l^{e_l})``; joining memoized partial CGTs makes the
whole algorithm ``O(Σ_l p_l^{e_l})`` instead of ``O(∏_l p_l^{e_l})``
(Sec. VI).  Orphan node relocation (Sec. V-B) runs first, producing one
problem variant per plausible placement; the smallest CGT across variants
wins.

All three optimizations are individually toggleable via :class:`DggtConfig`
for the ablation study (research question Q3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cgt import CGT
from repro.core.dynamic_graph import VIRTUAL, DynamicGrammarGraph, DynKey
from repro.core.grammar_pruning import (
    combination_conflicts,
    conflict_pairs_for,
)
from repro.core.orphan import relocation_variants
from repro.core.size_pruning import (
    _path_api_sizes,
    bound_combination,
    exact_tree_cost,
)
from repro.errors import SynthesisError, SynthesisTimeout
from repro.grammar.path_cache import PathCache
from repro.synthesis.deadline import Deadline
from repro.synthesis.problem import (
    CandidatePath,
    EndpointCandidate,
    SynthesisProblem,
)
from repro.synthesis.result import SynthesisOutcome, SynthesisStats
from repro.synthesis.stages import SynthesisContext, synthesize_with

#: One sibling group: (dependent dep-node id, its usable candidate paths).
SiblingEntry = Tuple[int, List[CandidatePath]]


@dataclass(frozen=True)
class DggtConfig:
    """Optimization toggles (all on = the paper's full system)."""

    grammar_pruning: bool = True
    size_pruning: bool = True
    orphan_relocation: bool = True
    max_reloc_variants: int = 16
    deadline_stride: int = 256


class DggtEngine:
    """The paper's contribution: near real-time NLU-driven synthesis."""

    name = "dggt"

    def __init__(self, config: Optional[DggtConfig] = None):
        self.config = config or DggtConfig()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def synthesize(
        self,
        problem: SynthesisProblem,
        deadline: Optional[Deadline] = None,
        *,
        ctx: Optional[SynthesisContext] = None,
    ) -> SynthesisOutcome:
        """Steps 5-6 over a pre-built problem: the :func:`search` merge
        stage wrapped in the shared staged pipeline (codegen is engine
        independent).  ``ctx`` (when the Synthesizer passes one) carries
        the deadline, the stats record, and the optional trace."""
        return synthesize_with(self, problem, deadline, ctx)

    def search(
        self,
        problem: SynthesisProblem,
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> CGT:
        """Step 5 — the dynamic program over relocation variants."""
        graph = problem.domain.graph
        stats.n_dep_edges = len(problem.dep_graph.edges()) + 1
        # "# of orig. path" (Table III) is the path count the *baseline*
        # faces: orphan edges carry the full root-attachment path sets
        # there, not the zero paths our orphan detection sees.
        stats.n_orig_paths = problem.total_paths() + sum(
            len(problem.start_attach_paths(orphan))
            for orphan in problem.orphan_nodes()
        )

        if self.config.orphan_relocation:
            variants, n_orphans = relocation_variants(
                problem, self.config.max_reloc_variants
            )
        else:
            variants, n_orphans = [problem], len(problem.orphan_nodes())
        stats.n_orphans = n_orphans
        stats.n_reloc_variants = len(variants)

        best: Optional[CGT] = None
        best_key = None
        best_variant: Optional[SynthesisProblem] = None
        failures: List[str] = []

        def attempt(variant: SynthesisProblem) -> None:
            nonlocal best, best_key, best_variant
            deadline.check()
            try:
                cgt, size, rank = self._synthesize_variant(
                    variant, deadline, stats
                )
            except SynthesisTimeout:
                raise
            except SynthesisError as exc:
                failures.append(str(exc))
                return
            _w, _n_edges, edge_key = cgt.sort_key(graph)
            key = (size, rank, edge_key)
            if best_key is None or key < best_key:
                best, best_key, best_variant = cgt, key, variant

        for variant in variants:
            attempt(variant)
        if best is None and problem not in variants:
            # Every relocation failed: fall back to the unrelocated problem
            # (HISyn's root-attachment treatment), so relocation never
            # loses solutions the baseline can find.
            attempt(problem)

        if best is None or best_variant is None:
            detail = failures[0] if failures else "no variant synthesized"
            raise SynthesisError(f"DGGT failed on all variants: {detail}")
        stats.n_paths_after_reloc = best_variant.total_paths()
        return best

    # ------------------------------------------------------------------
    # One dependency-graph variant
    # ------------------------------------------------------------------

    def _synthesize_variant(
        self,
        problem: SynthesisProblem,
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> Tuple[CGT, int, int]:
        graph = problem.domain.graph
        dep = problem.dep_graph
        dyng = DynamicGrammarGraph(graph)
        orphans = set(problem.orphan_nodes())
        cache = problem.domain.path_cache

        # Bottom-up traversal: deepest governors first (Algorithm 1 line 4).
        order = sorted(
            (n.node_id for n in dep.nodes()),
            key=lambda n: (-dep.depth(n), n),
        )
        for node_id in order:
            effective = [
                e for e in dep.children(node_id) if e.dep not in orphans
            ]
            if not effective:
                for cand in problem.candidates.get(node_id, ()):
                    dyng.add_leaf(node_id, cand)
                continue
            if len(effective) == 1:
                edge = effective[0]
                self._case_one(
                    dyng, node_id, edge.dep, problem.paths_of(edge), stats
                )
            else:
                gov_cands = [
                    c
                    for c in problem.candidates.get(node_id, ())
                    if not c.is_literal
                ]
                entries = {
                    e.dep: problem.paths_of(e) for e in effective
                }
                self._case_two(
                    dyng, node_id, gov_cands, entries, stats, deadline, graph,
                    cache,
                )
            if not any(
                dyng.has((node_id, c.node_id))
                for c in problem.candidates.get(node_id, ())
            ):
                word = dep.node(node_id).word
                raise SynthesisError(
                    f"no partial CGT covers the subtree of {word!r}"
                )

        # Virtual root level: the dependency root plus any orphan that
        # relocation could not place, all governed by the grammar start.
        virtual_entries: Dict[int, List[CandidatePath]] = {
            dep.root: list(problem.root_paths)
        }
        for orphan in sorted(orphans):
            virtual_entries[orphan] = problem.start_attach_paths(orphan)

        if len(virtual_entries) == 1:
            self._case_one(
                dyng, VIRTUAL, dep.root, virtual_entries[dep.root], stats
            )
        else:
            start_cand = EndpointCandidate(node_id=graph.start_id)
            self._case_two(
                dyng,
                VIRTUAL,
                [start_cand],
                virtual_entries,
                stats,
                deadline,
                graph,
                cache,
            )

        final_key: DynKey = (VIRTUAL, graph.start_id)
        if not dyng.has(final_key):
            raise SynthesisError("no CGT reaches the grammar start symbol")
        edges, bindings, size, rank = dyng.optimal(final_key)
        cgt = CGT(edges, bindings)
        if not cgt.is_grammar_valid(graph):
            # Cross-level prefix overlap (the pathology Sec. V-B discusses)
            # can, in rare cases, make the joined CGT invalid.
            raise SynthesisError(
                "joined optimal CGT is not grammar-valid "
                "(cross-level prefix overlap)"
            )
        return cgt, size, rank

    # ------------------------------------------------------------------
    # Case I: an edge without siblings (Algorithm 1 lines 5-11)
    # ------------------------------------------------------------------

    @staticmethod
    def _case_one(
        dyng: DynamicGrammarGraph,
        gov_dep_id: int,
        child_dep_id: int,
        paths: Sequence[CandidatePath],
        stats: SynthesisStats,
    ) -> None:
        for cp in paths:
            pred_key = (child_dep_id, cp.dst)
            if not dyng.has(pred_key):
                continue
            dyng.offer_path(gov_dep_id, cp, pred_key)
            stats.n_combinations += 1
            stats.n_merged += 1
            stats.n_valid_cgts += 1

    # ------------------------------------------------------------------
    # Case II: sibling edges (Algorithm 1 lines 12-22)
    # ------------------------------------------------------------------

    def _case_two(
        self,
        dyng: DynamicGrammarGraph,
        gov_dep_id: int,
        gov_candidates: Sequence[EndpointCandidate],
        entries: Dict[int, List[CandidatePath]],
        stats: SynthesisStats,
        deadline: Deadline,
        graph,
        cache: Optional[PathCache] = None,
    ) -> None:
        child_ids = sorted(entries)
        for gov_cand in gov_candidates:
            sibling_lists: List[SiblingEntry] = []
            viable = True
            for child in child_ids:
                usable = [
                    cp
                    for cp in entries[child]
                    if cp.src == gov_cand.node_id
                    and dyng.has((child, cp.dst))
                ]
                if not usable:
                    viable = False
                    break
                sibling_lists.append((child, usable))
            if not viable:
                continue
            self._process_sibling_group(
                dyng, gov_dep_id, gov_cand, sibling_lists, stats,
                deadline, graph, cache,
            )

    def _process_sibling_group(
        self,
        dyng: DynamicGrammarGraph,
        gov_dep_id: int,
        gov_cand: EndpointCandidate,
        sibling_lists: Sequence[SiblingEntry],
        stats: SynthesisStats,
        deadline: Deadline,
        graph,
        cache: Optional[PathCache] = None,
    ) -> None:
        src_node_id = gov_cand.node_id
        child_ids = [child for child, _paths in sibling_lists]
        all_paths = [cp for _child, paths in sibling_lists for cp in paths]
        pairs = (
            conflict_pairs_for(graph, all_paths, cache=cache)
            if self.config.grammar_pruning
            else set()
        )
        path_sizes = _path_api_sizes(graph, all_paths, cache=cache)

        # Enumerate this level's combinations (the per-level p^e the paper
        # accepts), filtering conflicts before any merging happens.
        survivors: List[Tuple[CandidatePath, ...]] = []
        count = 0
        for combo in product(*[paths for _child, paths in sibling_lists]):
            count += 1
            if count % self.config.deadline_stride == 0:
                deadline.check()
            ids = [cp.path_id for cp in combo]
            if pairs and combination_conflicts(ids, pairs):
                stats.pruned_by_grammar += 1
                continue
            survivors.append(combo)
        stats.n_combinations += count

        sized = [
            bound_combination(
                graph,
                combo,
                [
                    dyng.min_size((child, cp.dst))
                    for child, cp in zip(child_ids, combo)
                ],
                path_sizes,
            )
            for combo in survivors
        ]

        # Size-based pruning (Sec. V-C), run as lossless branch-and-bound:
        # combinations are processed in ascending lower-bound order and a
        # combination is skipped only when its optimistic total exceeds the
        # exact total of some already-merged *valid* combination.  (A pure
        # bound-vs-bound filter could discard a valid combination on the
        # strength of an invalid one — validity is only known after the
        # merge, e.g. cross-level "or" conflicts through memoized subtrees.)
        sized.sort(key=lambda sc: (sc.lower, sc.upper))
        best_total: Optional[int] = None
        for idx, sc in enumerate(sized):
            if idx % self.config.deadline_stride == 0:
                deadline.check()
            if (
                self.config.size_pruning
                and best_total is not None
                and sc.lower > best_total
            ):
                stats.pruned_by_size += len(sized) - idx
                break
            combo = sc.combo
            stats.n_merged += 1
            valid, tree_cost = self._merge_info(graph, combo, cache)
            if not valid:
                continue  # reconvergent or grammar-conflicting merge
            leaf_keys = [
                (child, cp.dst) for child, cp in zip(child_ids, combo)
            ]
            created = dyng.add_pcgt(
                gov_dep_id, src_node_id, combo, leaf_keys, tree_cost,
                gov_rank=gov_cand.rank,
            )
            if created is None:
                continue  # binding conflict or cross-level invalidity
            stats.n_valid_cgts += 1
            total = tree_cost + sum(
                dyng.min_size((child, cp.dst))
                for child, cp in zip(child_ids, combo)
            )
            if best_total is None or total < best_total:
                best_total = total

    # ------------------------------------------------------------------
    # Merge validity/cost (memoized per combination across queries)
    # ------------------------------------------------------------------

    @staticmethod
    def _merge_info(
        graph,
        combo: Sequence[CandidatePath],
        cache: Optional[PathCache] = None,
    ) -> Tuple[bool, int]:
        """(is the merged level-tree a valid CGT, its exact cost).

        Both facts are pure functions of the combination's path node
        sequences and the grammar graph — the per-level dynamic-program
        substructure — so with a domain :class:`PathCache` they are
        computed once per distinct combination across all queries.  The
        cost is 0 (unused) for invalid merges.
        """

        def compute() -> Tuple[bool, int]:
            tree = CGT.from_paths(cp.path for cp in combo)
            if not tree.is_tree() or tree.or_conflicts(graph):
                return (False, 0)
            return (True, exact_tree_cost(graph, combo))

        if cache is None:
            return compute()
        key = tuple(cp.path.nodes for cp in combo)
        return cache.merge_info(key, compute)
