"""Dynamic grammar graph-based translation — the paper's Algorithm 1.

DGGT replaces HISyn's exhaustive Step-5 with dynamic programming:

1. **Bottom-up dynamic grammar graph generation** — traverse the pruned
   dependency graph from the deepest level up.  An edge without siblings
   (Case I) extends each predecessor's memoized optimal partial CGT by one
   grammar path; sibling edges (Case II) enumerate the combinations of their
   candidate paths *within the level only*, filtered by grammar-based
   pruning (Sec. V-A) and size-based pruning (Sec. V-C), and each surviving
   combination becomes a partial-CGT node.
2. **Optimal CGT backtrack** — the node at the grammar start holds the
   optimal CGT; emit the codelet from it.

Per-level work is ``O(p_l^{e_l})``; joining memoized partial CGTs makes the
whole algorithm ``O(Σ_l p_l^{e_l})`` instead of ``O(∏_l p_l^{e_l})``
(Sec. VI).  Orphan node relocation (Sec. V-B) runs first, producing one
problem variant per plausible placement; the smallest CGT across variants
wins.

All three optimizations are individually toggleable via :class:`DggtConfig`
for the ablation study (research question Q3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cgt import CGT
from repro.core.dynamic_graph import (
    VIRTUAL,
    DynamicGrammarGraph,
    DynKey,
    InternedDynamicGraph,
)
from repro.core.grammar_pruning import (
    combination_conflicts,
    conflict_masks_for,
    conflict_pairs_for,
)
from repro.core.orphan import relocation_variants
from repro.core.size_pruning import (
    _path_api_sizes,
    bound_combination,
    exact_tree_cost,
    exact_tree_cost_enc,
)
from repro.errors import SynthesisError, SynthesisTimeout
from repro.grammar.interning import GraphInterner, IntPath, interner_for
from repro.grammar.path_cache import PathCache
from repro.synthesis.deadline import Deadline
from repro.synthesis.problem import (
    CandidatePath,
    EndpointCandidate,
    SynthesisProblem,
)
from repro.synthesis.result import SynthesisOutcome, SynthesisStats
from repro.synthesis.stages import SynthesisContext, synthesize_with

#: One sibling group: (dependent dep-node id, its usable candidate paths).
SiblingEntry = Tuple[int, List[CandidatePath]]

#: One usable candidate path in the interned engine:
#: (the path, its int encoding, the predecessor's DP slot,
#:  conflict bit, conflict mask, path size).
IntRec = Tuple[CandidatePath, IntPath, int, int, int, int]

#: One interned sibling group: (dependent dep-node id, its usable records).
IntSiblingEntry = Tuple[int, List[IntRec]]


@dataclass(frozen=True)
class DggtConfig:
    """Optimization toggles (all on = the paper's full system).

    ``interned`` selects the integer-interned array core (bitmask conflict
    pruning, flat DP tables); the legacy object engine stays available for
    equivalence testing — both produce byte-identical codelets and stats.
    """

    grammar_pruning: bool = True
    size_pruning: bool = True
    orphan_relocation: bool = True
    max_reloc_variants: int = 16
    deadline_stride: int = 256
    interned: bool = True


#: Shared (False, 0) merge-info value — one tuple for every invalid merge.
_INVALID_MERGE: Tuple[bool, int] = (False, 0)


def merge_valid_enc(
    interner: GraphInterner, combo_encs: Sequence[IntPath]
) -> bool:
    """``CGT.is_grammar_valid`` of a combination's fused paths, computed
    in the interner's bitmask algebra without materializing a
    :class:`CGT`: the edge union must be a single-rooted tree
    (|E| == |V| - 1, <=1 parent each) taking at most one alternative per
    choice non-terminal.  With per-path masks memoized, a combination is
    a handful of bigint ORs and popcounts: exactly one root means the
    tree-node count exceeds the distinct-child count by one, |E| == |V|-1
    then forces each child to have a unique parent, and a doubled choice
    alternative raises the taken or-edge popcount above the taken choice
    non-terminal popcount."""
    em = nm = dm = onm = 0
    enc_masks = interner.enc_masks
    for enc in combo_encs:
        m = enc_masks(enc)
        em |= m[0]
        nm |= m[1]
        dm |= m[2]
        onm |= m[3]
    if not em:
        return False
    pn = nm.bit_count()
    pd = dm.bit_count()
    if pn - pd != 1:
        return False  # not exactly one root
    if em.bit_count() != pn - 1:
        return False  # doubled parent or disconnected (a forest)
    om = em & interner.or_edge_mask
    return om.bit_count() == onm.bit_count()


class DggtEngine:
    """The paper's contribution: near real-time NLU-driven synthesis."""

    name = "dggt"

    def __init__(self, config: Optional[DggtConfig] = None):
        self.config = config or DggtConfig()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def synthesize(
        self,
        problem: SynthesisProblem,
        deadline: Optional[Deadline] = None,
        *,
        ctx: Optional[SynthesisContext] = None,
    ) -> SynthesisOutcome:
        """Steps 5-6 over a pre-built problem: the :func:`search` merge
        stage wrapped in the shared staged pipeline (codegen is engine
        independent).  ``ctx`` (when the Synthesizer passes one) carries
        the deadline, the stats record, and the optional trace."""
        return synthesize_with(self, problem, deadline, ctx)

    def search(
        self,
        problem: SynthesisProblem,
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> CGT:
        """Step 5 — the dynamic program over relocation variants."""
        graph = problem.domain.graph
        stats.n_dep_edges = len(problem.dep_graph.edges()) + 1
        # "# of orig. path" (Table III) is the path count the *baseline*
        # faces: orphan edges carry the full root-attachment path sets
        # there, not the zero paths our orphan detection sees.
        stats.n_orig_paths = problem.total_paths() + sum(
            len(problem.start_attach_paths(orphan))
            for orphan in problem.orphan_nodes()
        )

        if self.config.orphan_relocation:
            variants, n_orphans = relocation_variants(
                problem, self.config.max_reloc_variants
            )
        else:
            variants, n_orphans = [problem], len(problem.orphan_nodes())
        stats.n_orphans = n_orphans
        stats.n_reloc_variants = len(variants)

        best: Optional[CGT] = None
        best_key = None
        best_variant: Optional[SynthesisProblem] = None
        failures: List[str] = []

        def attempt(variant: SynthesisProblem) -> None:
            nonlocal best, best_key, best_variant
            deadline.check()
            try:
                cgt, size, rank = self._synthesize_variant(
                    variant, deadline, stats
                )
            except SynthesisTimeout:
                raise
            except SynthesisError as exc:
                failures.append(str(exc))
                return
            _w, _n_edges, edge_key = cgt.sort_key(graph)
            key = (size, rank, edge_key)
            if best_key is None or key < best_key:
                best, best_key, best_variant = cgt, key, variant

        for variant in variants:
            attempt(variant)
        if best is None and problem not in variants:
            # Every relocation failed: fall back to the unrelocated problem
            # (HISyn's root-attachment treatment), so relocation never
            # loses solutions the baseline can find.
            attempt(problem)

        if best is None or best_variant is None:
            detail = failures[0] if failures else "no variant synthesized"
            raise SynthesisError(f"DGGT failed on all variants: {detail}")
        stats.n_paths_after_reloc = best_variant.total_paths()
        return best

    # ------------------------------------------------------------------
    # One dependency-graph variant
    # ------------------------------------------------------------------

    def _synthesize_variant(
        self,
        problem: SynthesisProblem,
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> Tuple[CGT, int, int]:
        if self.config.interned:
            return self._synthesize_variant_interned(problem, deadline, stats)
        return self._synthesize_variant_object(problem, deadline, stats)

    def _synthesize_variant_object(
        self,
        problem: SynthesisProblem,
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> Tuple[CGT, int, int]:
        graph = problem.domain.graph
        dep = problem.dep_graph
        dyng = DynamicGrammarGraph(graph)
        orphans = set(problem.orphan_nodes())
        cache = problem.domain.path_cache

        # Bottom-up traversal: deepest governors first (Algorithm 1 line 4).
        order = sorted(
            (n.node_id for n in dep.nodes()),
            key=lambda n: (-dep.depth(n), n),
        )
        for node_id in order:
            effective = [
                e for e in dep.children(node_id) if e.dep not in orphans
            ]
            if not effective:
                for cand in problem.candidates.get(node_id, ()):
                    dyng.add_leaf(node_id, cand)
                continue
            if len(effective) == 1:
                edge = effective[0]
                self._case_one(
                    dyng, node_id, edge.dep, problem.paths_of(edge), stats
                )
            else:
                gov_cands = [
                    c
                    for c in problem.candidates.get(node_id, ())
                    if not c.is_literal
                ]
                entries = {
                    e.dep: problem.paths_of(e) for e in effective
                }
                self._case_two(
                    dyng, node_id, gov_cands, entries, stats, deadline, graph,
                    cache,
                )
            if not any(
                dyng.has((node_id, c.node_id))
                for c in problem.candidates.get(node_id, ())
            ):
                word = dep.node(node_id).word
                raise SynthesisError(
                    f"no partial CGT covers the subtree of {word!r}"
                )

        # Virtual root level: the dependency root plus any orphan that
        # relocation could not place, all governed by the grammar start.
        virtual_entries: Dict[int, List[CandidatePath]] = {
            dep.root: list(problem.root_paths)
        }
        for orphan in sorted(orphans):
            virtual_entries[orphan] = problem.start_attach_paths(orphan)

        if len(virtual_entries) == 1:
            self._case_one(
                dyng, VIRTUAL, dep.root, virtual_entries[dep.root], stats
            )
        else:
            start_cand = EndpointCandidate(node_id=graph.start_id)
            self._case_two(
                dyng,
                VIRTUAL,
                [start_cand],
                virtual_entries,
                stats,
                deadline,
                graph,
                cache,
            )

        final_key: DynKey = (VIRTUAL, graph.start_id)
        if not dyng.has(final_key):
            raise SynthesisError("no CGT reaches the grammar start symbol")
        edges, bindings, size, rank = dyng.optimal(final_key)
        cgt = CGT(edges, bindings)
        if not cgt.is_grammar_valid(graph):
            # Cross-level prefix overlap (the pathology Sec. V-B discusses)
            # can, in rare cases, make the joined CGT invalid.
            raise SynthesisError(
                "joined optimal CGT is not grammar-valid "
                "(cross-level prefix overlap)"
            )
        return cgt, size, rank

    # ------------------------------------------------------------------
    # Case I: an edge without siblings (Algorithm 1 lines 5-11)
    # ------------------------------------------------------------------

    @staticmethod
    def _case_one(
        dyng: DynamicGrammarGraph,
        gov_dep_id: int,
        child_dep_id: int,
        paths: Sequence[CandidatePath],
        stats: SynthesisStats,
    ) -> None:
        for cp in paths:
            pred_key = (child_dep_id, cp.dst)
            if not dyng.has(pred_key):
                continue
            dyng.offer_path(gov_dep_id, cp, pred_key)
            stats.n_combinations += 1
            stats.n_merged += 1
            stats.n_valid_cgts += 1

    # ------------------------------------------------------------------
    # Case II: sibling edges (Algorithm 1 lines 12-22)
    # ------------------------------------------------------------------

    def _case_two(
        self,
        dyng: DynamicGrammarGraph,
        gov_dep_id: int,
        gov_candidates: Sequence[EndpointCandidate],
        entries: Dict[int, List[CandidatePath]],
        stats: SynthesisStats,
        deadline: Deadline,
        graph,
        cache: Optional[PathCache] = None,
    ) -> None:
        child_ids = sorted(entries)
        for gov_cand in gov_candidates:
            sibling_lists: List[SiblingEntry] = []
            viable = True
            for child in child_ids:
                usable = [
                    cp
                    for cp in entries[child]
                    if cp.src == gov_cand.node_id
                    and dyng.has((child, cp.dst))
                ]
                if not usable:
                    viable = False
                    break
                sibling_lists.append((child, usable))
            if not viable:
                continue
            self._process_sibling_group(
                dyng, gov_dep_id, gov_cand, sibling_lists, stats,
                deadline, graph, cache,
            )

    def _process_sibling_group(
        self,
        dyng: DynamicGrammarGraph,
        gov_dep_id: int,
        gov_cand: EndpointCandidate,
        sibling_lists: Sequence[SiblingEntry],
        stats: SynthesisStats,
        deadline: Deadline,
        graph,
        cache: Optional[PathCache] = None,
    ) -> None:
        src_node_id = gov_cand.node_id
        child_ids = [child for child, _paths in sibling_lists]
        all_paths = [cp for _child, paths in sibling_lists for cp in paths]
        pairs = (
            conflict_pairs_for(graph, all_paths, cache=cache)
            if self.config.grammar_pruning
            else set()
        )
        path_sizes = _path_api_sizes(graph, all_paths, cache=cache)

        # Enumerate this level's combinations (the per-level p^e the paper
        # accepts), filtering conflicts before any merging happens.
        survivors: List[Tuple[CandidatePath, ...]] = []
        count = 0
        for combo in product(*[paths for _child, paths in sibling_lists]):
            count += 1
            if count % self.config.deadline_stride == 0:
                deadline.check()
            ids = [cp.path_id for cp in combo]
            if pairs and combination_conflicts(ids, pairs):
                stats.pruned_by_grammar += 1
                continue
            survivors.append(combo)
        stats.n_combinations += count

        # min_size of every distinct (child, sink) pair, looked up once per
        # sibling group: offers during this group only target the governor's
        # level, so the values cannot change mid-group.
        min_sizes = [
            {cp.dst: dyng.min_size((child, cp.dst)) for cp in paths}
            for child, paths in sibling_lists
        ]

        sized = [
            bound_combination(
                graph,
                combo,
                [ms[cp.dst] for ms, cp in zip(min_sizes, combo)],
                path_sizes,
            )
            for combo in survivors
        ]

        # Size-based pruning (Sec. V-C), run as lossless branch-and-bound:
        # combinations are processed in ascending lower-bound order and a
        # combination is skipped only when its optimistic total exceeds the
        # exact total of some already-merged *valid* combination.  (A pure
        # bound-vs-bound filter could discard a valid combination on the
        # strength of an invalid one — validity is only known after the
        # merge, e.g. cross-level "or" conflicts through memoized subtrees.)
        sized.sort(key=lambda sc: (sc.lower, sc.upper))
        best_total: Optional[int] = None
        for idx, sc in enumerate(sized):
            if idx % self.config.deadline_stride == 0:
                deadline.check()
            if (
                self.config.size_pruning
                and best_total is not None
                and sc.lower > best_total
            ):
                stats.pruned_by_size += len(sized) - idx
                break
            combo = sc.combo
            stats.n_merged += 1
            valid, tree_cost = self._merge_info(graph, combo, cache)
            if not valid:
                continue  # reconvergent or grammar-conflicting merge
            leaf_keys = [
                (child, cp.dst) for child, cp in zip(child_ids, combo)
            ]
            created = dyng.add_pcgt(
                gov_dep_id, src_node_id, combo, leaf_keys, tree_cost,
                gov_rank=gov_cand.rank,
            )
            if created is None:
                continue  # binding conflict or cross-level invalidity
            stats.n_valid_cgts += 1
            total = tree_cost + sum(
                ms[cp.dst] for ms, cp in zip(min_sizes, combo)
            )
            if best_total is None or total < best_total:
                best_total = total

    # ------------------------------------------------------------------
    # Merge validity/cost (memoized per combination across queries)
    # ------------------------------------------------------------------

    @staticmethod
    def _merge_info(
        graph,
        combo: Sequence[CandidatePath],
        cache: Optional[PathCache] = None,
    ) -> Tuple[bool, int]:
        """(is the merged level-tree a valid CGT, its exact cost).

        Both facts are pure functions of the combination's path node
        sequences and the grammar graph — the per-level dynamic-program
        substructure — so with a domain :class:`PathCache` they are
        computed once per distinct combination across all queries.  The
        layer is keyed by the paths' interned encodings so the interned
        and legacy engines share every entry.  The cost is 0 (unused)
        for invalid merges.
        """

        def compute() -> Tuple[bool, int]:
            tree = CGT.from_paths(cp.path for cp in combo)
            if not tree.is_tree() or tree.or_conflicts(graph):
                return (False, 0)
            return (True, exact_tree_cost(graph, combo))

        if cache is None:
            return compute()
        path_ints = cache.interner.path_ints
        key = tuple(path_ints(cp.path.nodes) for cp in combo)
        return cache.merge_info(key, compute)

    # ------------------------------------------------------------------
    # Interned engine: the same algorithm over dense int identity.
    # Every branch, counter increment, and tie-break below mirrors the
    # object engine exactly — the equivalence suite holds both engines to
    # byte-identical codelets and identical (non-cache) stats.
    # ------------------------------------------------------------------

    def _synthesize_variant_interned(
        self,
        problem: SynthesisProblem,
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> Tuple[CGT, int, int]:
        graph = problem.domain.graph
        interner = interner_for(graph)
        index = interner.index
        dep = problem.dep_graph
        dyng = InternedDynamicGraph(interner)
        orphans = set(problem.orphan_nodes())
        cache = problem.domain.path_cache

        order = sorted(
            (n.node_id for n in dep.nodes()),
            key=lambda n: (-dep.depth(n), n),
        )
        for node_id in order:
            effective = [
                e for e in dep.children(node_id) if e.dep not in orphans
            ]
            if not effective:
                for cand in problem.candidates.get(node_id, ()):
                    dyng.add_leaf(node_id, cand)
                continue
            if len(effective) == 1:
                edge = effective[0]
                self._case_one_interned(
                    dyng, node_id, edge.dep, problem.paths_of(edge), stats
                )
            else:
                gov_cands = [
                    c
                    for c in problem.candidates.get(node_id, ())
                    if not c.is_literal
                ]
                entries = {
                    e.dep: problem.paths_of(e) for e in effective
                }
                self._case_two_interned(
                    dyng, node_id, gov_cands, entries, stats, deadline, cache
                )
            covered = False
            for c in problem.candidates.get(node_id, ()):
                c_int = index.get(c.node_id)
                if c_int is not None and dyng.has(node_id, c_int):
                    covered = True
                    break
            if not covered:
                word = dep.node(node_id).word
                raise SynthesisError(
                    f"no partial CGT covers the subtree of {word!r}"
                )

        virtual_entries: Dict[int, List[CandidatePath]] = {
            dep.root: list(problem.root_paths)
        }
        for orphan in sorted(orphans):
            virtual_entries[orphan] = problem.start_attach_paths(orphan)

        if len(virtual_entries) == 1:
            self._case_one_interned(
                dyng, VIRTUAL, dep.root, virtual_entries[dep.root], stats
            )
        else:
            start_cand = EndpointCandidate(node_id=graph.start_id)
            self._case_two_interned(
                dyng,
                VIRTUAL,
                [start_cand],
                virtual_entries,
                stats,
                deadline,
                cache,
            )

        if not dyng.has(VIRTUAL, interner.start):
            raise SynthesisError("no CGT reaches the grammar start symbol")
        edges, bindings, size, rank = dyng.optimal(VIRTUAL, interner.start)
        cgt = CGT(edges, bindings)
        if not cgt.is_grammar_valid(graph):
            raise SynthesisError(
                "joined optimal CGT is not grammar-valid "
                "(cross-level prefix overlap)"
            )
        return cgt, size, rank

    @staticmethod
    def _case_one_interned(
        dyng: InternedDynamicGraph,
        gov_dep_id: int,
        child_dep_id: int,
        paths: Sequence[CandidatePath],
        stats: SynthesisStats,
    ) -> None:
        interner = dyng.interner
        path_ints = interner.path_ints
        slot_get = dyng._slot.get
        base = (child_dep_id + 1) * dyng.n
        for cp in paths:
            enc = path_ints(cp.path.nodes)
            pred_slot = slot_get(base + enc[-1])
            if pred_slot is None:
                continue
            dyng.offer_path(gov_dep_id, cp, enc, pred_slot)
            stats.n_combinations += 1
            stats.n_merged += 1
            stats.n_valid_cgts += 1

    def _case_two_interned(
        self,
        dyng: InternedDynamicGraph,
        gov_dep_id: int,
        gov_candidates: Sequence[EndpointCandidate],
        entries: Dict[int, List[CandidatePath]],
        stats: SynthesisStats,
        deadline: Deadline,
        cache: Optional[PathCache] = None,
    ) -> None:
        child_ids = sorted(entries)
        interner = dyng.interner
        index = interner.index
        path_ints = interner.path_ints
        slot_get = dyng._slot.get
        n = dyng.n
        for gov_cand in gov_candidates:
            gov_int = index.get(gov_cand.node_id)
            if gov_int is None:
                continue  # no grammar path can start at a non-grammar node
            sibling_lists: List[Tuple[int, List[Tuple[CandidatePath, IntPath, int]]]] = []
            viable = True
            for child in child_ids:
                base = (child + 1) * n
                usable: List[Tuple[CandidatePath, IntPath, int]] = []
                for cp in entries[child]:
                    enc = path_ints(cp.path.nodes)
                    if enc[0] != gov_int:
                        continue
                    pred_slot = slot_get(base + enc[-1])
                    if pred_slot is None:
                        continue
                    usable.append((cp, enc, pred_slot))
                if not usable:
                    viable = False
                    break
                sibling_lists.append((child, usable))
            if not viable:
                continue
            self._process_sibling_group_interned(
                dyng, gov_dep_id, gov_cand, gov_int, sibling_lists, stats,
                deadline, cache,
            )

    def _process_sibling_group_interned(
        self,
        dyng: InternedDynamicGraph,
        gov_dep_id: int,
        gov_cand: EndpointCandidate,
        gov_int: int,
        sibling_lists: Sequence[Tuple[int, List[Tuple[CandidatePath, IntPath, int]]]],
        stats: SynthesisStats,
        deadline: Deadline,
        cache: Optional[PathCache] = None,
    ) -> None:
        interner = dyng.interner
        graph = interner.graph
        all_encs = [
            rec[1] for _child, recs in sibling_lists for rec in recs
        ]
        if self.config.grammar_pruning:
            mask_records = conflict_masks_for(graph, all_encs, cache=cache)
            check_conflicts = any(mask for _bit, mask in mask_records)
        else:
            mask_records = [(0, 0)] * len(all_encs)
            check_conflicts = False
        if cache is not None:
            size_of_enc = cache.size_of_enc
        else:
            size_of_enc = interner.size_of_enc

        # Fold the conflict bits, path size, and the per-encoding bitmasks
        # into each record so the enumeration and the merge loop touch
        # nothing but local tuples: rec = (cp, enc, pred_slot, conflict_bit,
        # conflict_mask, size, em, nm, dm, onm, nm_all, sink_bit).
        enc_masks = interner.enc_masks
        rec_lists: List[List[IntRec]] = []
        flat = 0
        for _child, recs in sibling_lists:
            full: List[IntRec] = []
            for cp, enc, pred_slot in recs:
                bit, mask = mask_records[flat]
                flat += 1
                em, nm, dm, onm, nm_all = enc_masks(enc)
                full.append(
                    (cp, enc, pred_slot, bit, mask, size_of_enc(enc),
                     em, nm, dm, onm, nm_all, 1 << enc[-1])
                )
            rec_lists.append(full)

        deadline_stride = self.config.deadline_stride
        survivors: List[Tuple[IntRec, ...]] = []
        count = 0
        for combo in product(*rec_lists):
            count += 1
            if count % deadline_stride == 0:
                deadline.check()
            if check_conflicts:
                acc = 0
                conflict = False
                for rec in combo:
                    if rec[4] & acc:
                        conflict = True
                        break
                    acc |= rec[3]
                if conflict:
                    stats.pruned_by_grammar += 1
                    continue
            survivors.append(combo)
        stats.n_combinations += count

        # (lower, upper, combo, pred_total): the SizedCombination bounds as
        # a flat tuple; pred sizes read straight off the DP arrays (stable
        # mid-group — offers only target the governor's level).
        pred_size = dyng._size
        src_weight = 1 if interner.is_api[gov_int] else 0
        sized = []
        for combo in survivors:
            pred_total = 0
            max_size = 0
            size_sum = 0
            for rec in combo:
                pred_total += pred_size[rec[2]]
                size = rec[5]
                size_sum += size
                if size > max_size:
                    max_size = size
            lower = max_size + pred_total
            upper = size_sum - (len(combo) - 1) * src_weight + pred_total
            sized.append((lower, upper, combo, pred_total))

        sized.sort(key=lambda item: (item[0], item[1]))
        size_pruning = self.config.size_pruning
        gov_rank = gov_cand.rank
        best_total: Optional[int] = None
        # Locals for the inlined merge validity/cost algebra (the bitmask
        # form of merge_valid_enc + exact_tree_cost_enc, fed from the
        # masks hoisted into the records above).  The shared merge cache
        # layer still sees every lookup on the same interned key, so the
        # persisted layer stays byte-identical with the legacy engine.
        or_mask = interner.or_edge_mask
        weight = interner.weight
        weight_mask = interner.weight_mask
        src_bit = 1 << gov_int
        src_api = interner.is_api[gov_int]
        merge_info = cache.merge_info if cache is not None else None
        for idx, item in enumerate(sized):
            if idx % deadline_stride == 0:
                deadline.check()
            lower, _upper, combo, pred_total = item
            if (
                size_pruning
                and best_total is not None
                and lower > best_total
            ):
                stats.pruned_by_size += len(sized) - idx
                break
            stats.n_merged += 1
            combo_encs = tuple(rec[1] for rec in combo)
            fem = fnm = fdm = fonm = nodes = sinks = 0
            for rec in combo:
                fem |= rec[6]
                fnm |= rec[7]
                fdm |= rec[8]
                fonm |= rec[9]
                nodes |= rec[10]
                sinks |= rec[11]
            pn = fnm.bit_count()
            if (
                not fem
                or pn - fdm.bit_count() != 1
                or fem.bit_count() != pn - 1
                or (fem & or_mask).bit_count() != fonm.bit_count()
            ):
                info = _INVALID_MERGE
            else:
                rem = nodes & ~sinks & ~src_bit & weight_mask
                tree_cost = 0
                while rem:
                    low = rem & -rem
                    tree_cost += weight[low.bit_length() - 1]
                    rem ^= low
                if src_api and not (sinks & src_bit):
                    tree_cost += 1
                info = (True, tree_cost)
            if merge_info is not None:
                info = merge_info(combo_encs, lambda: info)
            valid, tree_cost = info
            if not valid:
                continue  # reconvergent or grammar-conflicting merge
            created = dyng.add_pcgt(
                gov_dep_id,
                gov_int,
                (fem, fdm, fonm),
                [rec[0] for rec in combo],
                [rec[2] for rec in combo],
                tree_cost,
                gov_rank,
            )
            if not created:
                continue  # binding conflict or cross-level invalidity
            stats.n_valid_cgts += 1
            total = tree_cost + pred_total
            if best_total is None or total < best_total:
                best_total = total

