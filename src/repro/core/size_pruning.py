"""Size-based pruning (paper Sec. V-C).

For a path combination ``c = {p_1, ..., p_n}`` the merged size is bounded::

    len(union of APIs in the p_i)  <=  size(c)  <=  sum(size(p_i)) - (n - 1)

— the upper bound holds because the paths of one combination share at least
their first node (the common governor API); the lower bound because merging
can at best deduplicate every common API.

Our bounds additionally fold in the ``min_size`` of each path's sink node in
the dynamic grammar graph, so the pruning stays *lossless* with respect to
the full partial-CGT cost (tree + already-memoized subtrees): a combination
is pruned only when its optimistic total still exceeds some other
combination's pessimistic total.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compat import slotted_dataclass
from repro.grammar.graph import GrammarGraph, NodeKind
from repro.grammar.interning import GraphInterner, IntPath
from repro.grammar.path_cache import PathCache
from repro.synthesis.problem import CandidatePath


@slotted_dataclass(frozen=True)
class SizedCombination:
    """A combination with its cost bounds (min_size/max_size of Sec. V-C).

    Slotted: one is allocated per surviving combination of every sibling
    group."""

    combo: Tuple[CandidatePath, ...]
    lower: int
    upper: int


def _path_api_sizes(
    graph: GrammarGraph,
    paths: Sequence[CandidatePath],
    cache: Optional[PathCache] = None,
) -> Dict[str, int]:
    """size(p) per path id — APIs excluding the sink (DESIGN.md accounting).

    With a domain :class:`PathCache`, sizes are memoized across queries per
    path node sequence."""
    if cache is not None:
        return {cp.path_id: cache.path_size(cp.path) for cp in paths}
    return {cp.path_id: cp.path.size(graph) for cp in paths}


def bound_combination(
    graph: GrammarGraph,
    combo: Sequence[CandidatePath],
    sink_min_sizes: Sequence[int],
    path_sizes: Dict[str, int],
) -> SizedCombination:
    """Compute the (lower, upper) cost bounds of one combination.

    ``sink_min_sizes[i]`` is the memoized ``min_size`` of the dynamic-graph
    node the i-th path's sink resolves to.
    """
    sizes = [path_sizes[cp.path_id] for cp in combo]
    pred_total = sum(sink_min_sizes)
    n = len(combo)
    # Lower bound: even with maximal merging, the tree weighs at least the
    # heaviest path; subtrees below the sinks are already optimal.
    lower = max(sizes) + pred_total
    # Upper bound: merging deduplicates at least the shared governor API
    # (counted n times in the sum, once in the tree).
    src = combo[0].path.nodes[0]
    src_weight = 1 if graph.node(src).kind is NodeKind.API else 0
    upper = sum(sizes) - (n - 1) * src_weight + pred_total
    return SizedCombination(tuple(combo), lower, upper)


def prune_by_size(
    sized: Sequence[SizedCombination],
) -> Tuple[List[SizedCombination], int]:
    """Drop combinations whose lower bound exceeds the global minimum upper
    bound (``C.min_size > C.min(max_size)`` in the paper's notation)."""
    if not sized:
        return [], 0
    best_upper = min(s.upper for s in sized)
    kept = [s for s in sized if s.lower <= best_upper]
    return kept, len(sized) - len(kept)


def exact_tree_cost(
    graph: GrammarGraph,
    combo: Sequence[CandidatePath],
) -> int:
    """Exact merged-tree semantic weight excluding the sink nodes (whose
    cost is carried by their dynamic-graph nodes).  The shared source — the
    governor word's endpoint — always counts 1 when it is an API; interior
    generic catch-alls weigh 0."""
    nodes: Set[str] = set()
    sinks: Set[str] = set()
    for cp in combo:
        nodes.update(cp.path.nodes)
        sinks.add(cp.dst)
    src = combo[0].path.nodes[0]
    total = sum(graph.api_weight(n) for n in nodes - sinks - {src})
    if src not in sinks and graph.node(src).kind is NodeKind.API:
        total += 1
    return total


def exact_tree_cost_enc(
    interner: GraphInterner,
    combo_encs: Sequence[IntPath],
) -> int:
    """:func:`exact_tree_cost` over interned path encodings.

    Sources/sinks are the encodings' endpoint ints; node sets are the
    memoized per-encoding bitmasks, so the set algebra is bigint ops and
    only nodes with non-zero weight are touched.  Value-identical to the
    string version (both engines share the merge cache layer, so this
    must hold exactly).
    """
    enc_masks = interner.enc_masks
    nodes = 0
    sinks = 0
    for enc in combo_encs:
        nodes |= enc_masks(enc)[4]
        sinks |= 1 << enc[-1]
    src = combo_encs[0][0]
    weight = interner.weight
    rem = nodes & ~sinks & ~(1 << src) & interner.weight_mask
    total = 0
    while rem:
        low = rem & -rem
        total += weight[low.bit_length() - 1]
        rem ^= low
    if not (sinks >> src) & 1 and interner.is_api[src]:
        total += 1
    return total
