"""Grammar-based pruning (paper Sec. V-A).

"Given a set of 'or' edges that share the same non-terminal node, only one
of the 'or' edges should be selected at a time to produce the CGT."  Two
candidate paths form a *conflict paths pair* when merging them would select
two alternatives of one choice rule; any combination containing a conflict
pair is grammar-incorrect and is pruned before the (expensive) merge.

The implementation follows the paper's recipe: merge the candidate paths of
the sibling edges into an all-path prefix structure recording path ids per
edge (that is the :class:`~repro.grammar.path_voted.PathVotedGraph`), find
the conflict "or" edges, expand them into conflict path pairs, and filter
the combinations.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grammar.graph import GrammarGraph
from repro.grammar.interning import IntPath, interner_for
from repro.grammar.path_cache import PathCache
from repro.grammar.path_voted import (
    PathVotedGraph,
    conflict_enc_pairs,
    conflict_mask_records,
)
from repro.synthesis.problem import CandidatePath


def conflict_pairs_for(
    graph: GrammarGraph,
    candidate_paths: Iterable[CandidatePath],
    cache: Optional[PathCache] = None,
) -> Set[FrozenSet[str]]:
    """All conflict path pairs among the given candidate paths.

    With a domain :class:`PathCache`, the vote analysis is memoized across
    queries (keyed by the paths' node sequences, since path ids are
    query-local labels).
    """
    if cache is not None:
        return cache.conflict_pairs([cp.path for cp in candidate_paths])
    voted = PathVotedGraph(graph, (cp.path for cp in candidate_paths))
    return voted.conflict_path_pairs()


def conflict_masks_for(
    graph: GrammarGraph,
    encs: Sequence[IntPath],
    cache: Optional[PathCache] = None,
) -> List[Tuple[int, int]]:
    """Per-path ``(bit, mask)`` conflict records for interned encodings —
    the bitmask form of :func:`conflict_pairs_for` the interned engine
    consumes.  A combination conflicts iff, scanning members while
    accumulating bits, a member's mask intersects the accumulated set.
    With a domain :class:`PathCache`, the pair analysis shares the
    conflicts layer with the legacy engine."""
    if cache is not None:
        return cache.conflict_masks(encs)
    pairs = conflict_enc_pairs(interner_for(graph), set(encs))
    return conflict_mask_records(encs, pairs)


def combination_conflicts(
    combo_ids: Sequence[str],
    pairs: Set[FrozenSet[str]],
) -> bool:
    """True when the combination contains any conflict pair."""
    n = len(combo_ids)
    for i in range(n):
        for j in range(i + 1, n):
            if frozenset((combo_ids[i], combo_ids[j])) in pairs:
                return True
    return False


def prune_combinations(
    graph: GrammarGraph,
    all_paths: Sequence[CandidatePath],
    combinations: Iterable[Tuple[CandidatePath, ...]],
) -> Tuple[List[Tuple[CandidatePath, ...]], int]:
    """Filter combinations containing conflict pairs.

    Returns (surviving combinations, number pruned).  The conflict pairs are
    computed once over all sibling-edge candidate paths, then each
    combination is checked pairwise — cheap id-set tests, no merging.
    """
    pairs = conflict_pairs_for(graph, all_paths)
    if not pairs:
        result = list(combinations)
        return result, 0
    kept: List[Tuple[CandidatePath, ...]] = []
    pruned = 0
    for combo in combinations:
        ids = [cp.path_id for cp in combo]
        if combination_conflicts(ids, pairs):
            pruned += 1
        else:
            kept.append(combo)
    return kept, pruned
